"""Request generators driving the n-tier application.

Two client models, matching the paper's two experimental setups:

* :class:`OpenLoopGenerator` — Poisson arrivals whose rate follows a
  user trace divided by the mean think time. This is the production/
  evaluation workload ("a request rate that follows a Poisson
  distribution to simulate a number of concurrent users").
* :class:`ClosedLoopGenerator` — a fixed population of users that
  re-issue immediately (or after a think time) when their previous
  request completes. With zero think time this is the paper's modified
  generator for the concurrency sweeps of Fig. 3/7, where the offered
  concurrency is controlled exactly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.ntier.app import NTierApplication
from repro.ntier.request import Request
from repro.sim.engine import Simulator
from repro.sim.event import EventHandle
from repro.workload.mixes import WorkloadMix
from repro.workload.trace import Trace

__all__ = ["RequestFactory", "OpenLoopGenerator", "ClosedLoopGenerator"]

# Re-evaluate the arrival rate at least this often even when the
# instantaneous rate is very low, so bursts are never missed.
_MAX_GAP = 0.5


class RequestFactory:
    """Creates requests with demands drawn from a workload mix."""

    def __init__(
        self,
        mix: WorkloadMix,
        rng: np.random.Generator,
        dataset_scale: float = 1.0,
        demand_scale: float = 1.0,
    ) -> None:
        if dataset_scale <= 0 or demand_scale <= 0:
            raise ConfigurationError("dataset_scale and demand_scale must be > 0")
        self.mix = mix
        self.rng = rng
        self.dataset_scale = dataset_scale
        self.demand_scale = demand_scale
        self._next_id = 0

    def create(self, now: float) -> Request:
        """Draw an interaction and build a request arriving at ``now``."""
        name = self.mix.sample_interaction(self.rng)
        demands = self.mix.profile(name).draw(
            self.rng, self.dataset_scale, self.demand_scale
        )
        req = Request(
            req_id=self._next_id, interaction=name, arrival=now, demands=demands
        )
        self._next_id += 1
        return req


class OpenLoopGenerator:
    """Nonhomogeneous-Poisson arrivals following a user trace.

    The instantaneous arrival rate is ``users(t) / think_time``. Gaps
    are drawn from the rate at the previous arrival and capped at
    ``0.5 s`` so the rate is re-sampled through fast bursts; over the
    5 s knot spacing of the built-in traces this is an accurate
    piecewise approximation of the exact thinning construction.
    """

    def __init__(
        self,
        sim: Simulator,
        app: NTierApplication,
        trace: Trace,
        factory: RequestFactory,
        rng: np.random.Generator,
        think_time: float = 2.0,
    ) -> None:
        if think_time <= 0:
            raise ConfigurationError(f"think_time must be > 0, got {think_time!r}")
        self.sim = sim
        self.app = app
        self.trace = trace
        self.factory = factory
        self.rng = rng
        self.think_time = think_time
        self.generated = 0
        # Client-deadline state (the request-timeout fault class): while
        # a deadline is set, every new arrival is watched; one that
        # misses the deadline or fails (server crash) is re-issued as a
        # fresh physical request up to ``max_retries`` times.
        self.retried = 0
        self.timeouts = 0
        self.abandoned = 0
        self._deadline: float | None = None
        self._max_retries = 0
        self._watch: dict[int, tuple[object, int, float]] = {}
        self._stopped = False
        self._suspended = False
        self._next_event: EventHandle | None = None
        app.on_complete(self._on_request_complete)
        app.on_fail(self._on_request_fail)

    def start(self) -> None:
        """Begin generating at the current simulation time."""
        self._schedule_next()

    def stop(self) -> None:
        """Stop generating new arrivals (in-flight requests finish)."""
        self._stopped = True

    # ------------------------------------------------------------------
    # fluid-mode hand-off (hybrid simulation)
    # ------------------------------------------------------------------
    def suspend(self) -> None:
        """Pause arrival generation without tearing the generator down.

        The pending next-arrival event is cancelled; requests already in
        flight keep draining through the discrete machinery. Used by the
        :class:`~repro.sim.governor.ModeGovernor` when the fluid
        integrator takes over the arrival stream.
        """
        self._suspended = True
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None

    def resume(self) -> None:
        """Resume arrival generation at the current simulation time."""
        if not self._suspended:
            return
        self._suspended = False
        if not self._stopped:
            self._schedule_next()

    # ------------------------------------------------------------------
    # client deadline + capped retry (fault injection)
    # ------------------------------------------------------------------
    def set_client_timeout(self, deadline: float, max_retries: int = 2) -> None:
        """Give subsequent arrivals a response deadline with retries.

        A watched request that has not completed within ``deadline``
        seconds counts as a timeout: the client abandons it (the
        original keeps consuming server resources, as a real HTTP
        request does after the socket closes) and re-issues a fresh
        physical request whose ``arrival`` is backdated to the first
        attempt — so recorded tail latencies account for the full
        client-perceived wait across retries. Failed requests (server
        crash) retry immediately. After ``max_retries`` the interaction
        is abandoned for good.
        """
        if deadline <= 0:
            raise ConfigurationError(f"deadline must be > 0, got {deadline!r}")
        if max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {max_retries!r}"
            )
        self._deadline = float(deadline)
        self._max_retries = int(max_retries)

    def clear_client_timeout(self) -> None:
        """Stop watching *new* arrivals (in-flight watches keep their
        deadline — they were issued under it)."""
        self._deadline = None

    def rate_at(self, t: float) -> float:
        """Arrival rate (requests/second) implied by the trace at ``t``."""
        return self.trace.users_at(t) / self.think_time

    def _schedule_next(self) -> None:
        if self._stopped or self._suspended:
            return
        now = self.sim.now
        if now >= self.trace.duration:
            return
        rate = self.rate_at(now)
        if rate <= 1e-9:
            self._next_event = self.sim.schedule_after(_MAX_GAP, self._tick_idle)
            return
        gap = float(self.rng.exponential(1.0 / rate))
        if gap > _MAX_GAP:
            self._next_event = self.sim.schedule_after(_MAX_GAP, self._tick_idle)
        else:
            self._next_event = self.sim.schedule_after(gap, self._arrive)

    def _tick_idle(self) -> None:
        # No arrival happened in this re-evaluation slot; just resample.
        self._schedule_next()

    def _arrive(self) -> None:
        if self._stopped:
            return
        req = self.factory.create(self.sim.now)
        self.generated += 1
        self._submit_watched(req, attempt=0, first_arrival=req.arrival)
        self._schedule_next()

    def _submit_watched(
        self, req: Request, attempt: int, first_arrival: float
    ) -> None:
        if self._deadline is not None:
            handle = self.sim.schedule_after(
                self._deadline, self._deadline_expired, req.req_id
            )
            self._watch[req.req_id] = (handle, attempt, first_arrival)
        self.app.submit(req)

    def _retry(self, attempt: int, first_arrival: float) -> None:
        req = self.factory.create(self.sim.now)
        # Backdate so the recorded response time spans every attempt.
        req.arrival = first_arrival
        self.generated += 1
        self.retried += 1
        self._submit_watched(req, attempt, first_arrival)

    def _deadline_expired(self, req_id: int) -> None:
        entry = self._watch.pop(req_id, None)
        if entry is None:
            return  # completed or failed in the same instant
        _handle, attempt, first_arrival = entry
        self.timeouts += 1
        if attempt < self._max_retries and not self._stopped:
            self._retry(attempt + 1, first_arrival)
        else:
            self.abandoned += 1

    def _on_request_complete(self, request: Request) -> None:
        entry = self._watch.pop(request.req_id, None)
        if entry is not None and entry[0] is not None:
            entry[0].cancel()

    def _on_request_fail(self, request: Request) -> None:
        entry = self._watch.pop(request.req_id, None)
        if entry is None:
            return  # not watched: no timeout fault active at issue time
        handle, attempt, first_arrival = entry
        if handle is not None:
            handle.cancel()
        if attempt < self._max_retries and not self._stopped:
            self._retry(attempt + 1, first_arrival)
        else:
            self.abandoned += 1


class ClosedLoopGenerator:
    """A fixed population of synchronous users.

    Each user loops submit → wait for completion → think → submit.
    ``think_time = 0`` pins the system concurrency to exactly
    ``num_users`` (the Fig. 3/7 sweep mode); a positive value draws
    exponential think times.

    ``timeout`` models client abandonment: a user whose request has not
    completed within the timeout gives up and immediately re-issues.
    The abandoned request keeps consuming server resources until it
    finishes (as a real HTTP request does after the client hangs up),
    which is what makes tight client timeouts *amplify* overload —
    the classic retry-storm dynamic.
    """

    def __init__(
        self,
        sim: Simulator,
        app: NTierApplication,
        num_users: int,
        factory: RequestFactory,
        rng: np.random.Generator,
        think_time: float = 0.0,
        timeout: float | None = None,
    ) -> None:
        if num_users < 1:
            raise ConfigurationError(f"num_users must be >= 1, got {num_users!r}")
        if think_time < 0:
            raise ConfigurationError(f"think_time must be >= 0, got {think_time!r}")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(f"timeout must be > 0, got {timeout!r}")
        self.sim = sim
        self.app = app
        self.num_users = num_users
        self.factory = factory
        self.rng = rng
        self.think_time = think_time
        self.timeout = timeout
        self.generated = 0
        self.timeouts = 0
        # Closed users re-issue on completion anyway, so a timeout never
        # *retries* (that would double-issue); these counters exist for
        # interface parity with the open generator's resilience summary.
        self.retried = 0
        self.abandoned = 0
        self._stopped = False
        self._pending: dict[int, object] = {}
        app.on_complete(self._on_complete)
        # A request failed by a server crash frees its user exactly like
        # a completion: the user sees an error page and re-issues.
        app.on_fail(self._on_complete)

    def start(self, ramp: float = 0.0) -> None:
        """Launch all users, optionally staggered over ``ramp`` seconds."""
        for i in range(self.num_users):
            delay = (ramp * i / self.num_users) if ramp > 0 else 0.0
            self.sim.schedule_after(delay, self._issue)

    def stop(self) -> None:
        """Users stop re-issuing after their current request."""
        self._stopped = True

    # ------------------------------------------------------------------
    # client deadline (fault injection) — interface parity with the
    # open-loop generator so the FaultInjector can drive either.
    # ------------------------------------------------------------------
    def set_client_timeout(self, deadline: float, max_retries: int = 2) -> None:
        """Give subsequently issued requests an abandonment deadline.

        In the closed model the user abandons the slow request and
        re-issues on its next cycle (population is conserved), so
        ``max_retries`` has no separate meaning here and is ignored.
        """
        if deadline <= 0:
            raise ConfigurationError(f"deadline must be > 0, got {deadline!r}")
        self.timeout = float(deadline)

    def clear_client_timeout(self) -> None:
        """New requests are issued without a deadline again."""
        self.timeout = None

    def set_population(self, num_users: int) -> None:
        """Grow the user population at runtime (sweep support).

        Shrinking is not supported: completed users simply stop
        re-issuing when the population target is below the live count.
        """
        if num_users < 1:
            raise ConfigurationError(f"num_users must be >= 1, got {num_users!r}")
        extra = num_users - self.num_users
        self.num_users = num_users
        for _ in range(max(0, extra)):
            self.sim.schedule_after(0.0, self._issue)

    def _issue(self) -> None:
        if self._stopped:
            return
        if len(self._pending) >= self.num_users:
            return  # population was shrunk; retire this user
        req = self.factory.create(self.sim.now)
        self.generated += 1
        handle = None
        if self.timeout is not None:
            handle = self.sim.schedule_after(
                self.timeout, self._abandon, req.req_id
            )
        self._pending[req.req_id] = handle
        self.app.submit(req)

    def _abandon(self, req_id: int) -> None:
        """The user gave up waiting; the request stays in the system."""
        if req_id not in self._pending:
            return  # completed in the same instant
        del self._pending[req_id]
        self.timeouts += 1
        self._next_cycle()

    def _on_complete(self, request: Request) -> None:
        handle = self._pending.pop(request.req_id, "absent")
        if handle == "absent":
            return  # not ours, or already abandoned by its user
        if handle is not None:
            handle.cancel()
        self._next_cycle()

    def _next_cycle(self) -> None:
        if self._stopped:
            return
        if self.think_time == 0.0:
            self._issue()
        else:
            delay = float(self.rng.exponential(self.think_time))
            self.sim.schedule_after(delay, self._issue)
