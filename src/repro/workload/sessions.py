"""Markov session model: users navigate, they don't draw i.i.d. pages.

The RUBBoS client emulates browsing sessions — after viewing a story a
user most likely views its comments, after a search they open a result,
and so on. This module adds that structure on top of the plain mixes:

* :class:`TransitionMatrix` — a first-order Markov chain over the
  interaction catalog, with stationary-distribution computation;
* :class:`SessionRequestFactory` — a drop-in replacement for
  :class:`~repro.workload.generator.RequestFactory` that samples each
  virtual user's next interaction from the chain, preserving the
  sequential correlation that i.i.d. sampling destroys;
* :func:`browse_session_matrix` — a plausible navigation graph for the
  browse-only catalog.

The chain's *stationary distribution* is what the capacity math needs
(mean demands per tier), so :meth:`TransitionMatrix.stationary_mix`
derives an equivalent :class:`~repro.workload.mixes.WorkloadMix`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.ntier.request import Request
from repro.workload.mixes import WorkloadMix
from repro.workload.rubbos import interaction_by_name

__all__ = [
    "TransitionMatrix",
    "SessionRequestFactory",
    "browse_session_matrix",
]


class TransitionMatrix:
    """A first-order Markov chain over interaction names."""

    def __init__(self, interactions: list[str], matrix) -> None:
        if not interactions:
            raise ConfigurationError("need at least one interaction")
        for name in interactions:
            interaction_by_name(name)  # raises on unknown names
        p = np.asarray(matrix, dtype=float)
        n = len(interactions)
        if p.shape != (n, n):
            raise ConfigurationError(
                f"matrix shape {p.shape} does not match {n} interactions"
            )
        if np.any(p < 0):
            raise ConfigurationError("transition probabilities must be >= 0")
        rows = p.sum(axis=1)
        if np.any(np.abs(rows - 1.0) > 1e-9):
            raise ConfigurationError(
                f"each row must sum to 1, got sums {rows.round(6)}"
            )
        self.interactions = list(interactions)
        self.p = p
        self._index = {name: i for i, name in enumerate(interactions)}

    # ------------------------------------------------------------------
    def sample_next(self, rng: np.random.Generator, current: str | None) -> str:
        """Draw the next interaction (uniform entry when ``current`` is
        None — a fresh session)."""
        if current is None:
            idx = int(rng.integers(len(self.interactions)))
            return self.interactions[idx]
        row = self.p[self._index[current]]
        idx = int(rng.choice(len(row), p=row))
        return self.interactions[idx]

    def stationary(self) -> np.ndarray:
        """Stationary distribution (power iteration; the chains used
        here are irreducible and aperiodic)."""
        pi = np.full(len(self.interactions), 1.0 / len(self.interactions))
        for _ in range(10_000):
            nxt = pi @ self.p
            if np.abs(nxt - pi).max() < 1e-12:
                return nxt
            pi = nxt
        return pi

    def stationary_mix(
        self, base_demands: dict[str, tuple[float, float]], name: str = "session"
    ) -> WorkloadMix:
        """The WorkloadMix whose weights equal the chain's long-run
        interaction frequencies (for capacity/demand calculations)."""
        pi = self.stationary()
        weights = {
            inter: float(w) for inter, w in zip(self.interactions, pi) if w > 0
        }
        return WorkloadMix(name, weights, base_demands)


class SessionRequestFactory:
    """Request factory with per-virtual-user Markov session state.

    ``n_users`` independent chains are multiplexed round-robin, which
    matches how a closed-loop population interleaves: each virtual
    user's own request sequence follows the chain exactly.
    """

    def __init__(
        self,
        chain: TransitionMatrix,
        base_demands: dict[str, tuple[float, float]],
        rng: np.random.Generator,
        n_users: int = 32,
        dataset_scale: float = 1.0,
        demand_scale: float = 1.0,
        session_length: int = 20,
    ) -> None:
        if n_users < 1:
            raise ConfigurationError(f"n_users must be >= 1, got {n_users!r}")
        if session_length < 1:
            raise ConfigurationError(
                f"session_length must be >= 1, got {session_length!r}"
            )
        self.chain = chain
        self.mix = chain.stationary_mix(base_demands)
        self.rng = rng
        self.n_users = int(n_users)
        self.dataset_scale = float(dataset_scale)
        self.demand_scale = float(demand_scale)
        self.session_length = int(session_length)
        self._state: list[str | None] = [None] * self.n_users
        self._steps: list[int] = [0] * self.n_users
        self._turn = 0
        self._next_id = 0

    def create(self, now: float) -> Request:
        """Create the next request (drop-in RequestFactory interface)."""
        user = self._turn % self.n_users
        self._turn += 1
        current = self._state[user]
        name = self.chain.sample_next(self.rng, current)
        self._steps[user] += 1
        if self._steps[user] >= self.session_length:
            # session ends; the next request starts a fresh one
            self._state[user] = None
            self._steps[user] = 0
        else:
            self._state[user] = name
        demands = self.mix.profile(name).draw(
            self.rng, self.dataset_scale, self.demand_scale
        )
        req = Request(
            req_id=self._next_id, interaction=name, arrival=now, demands=demands
        )
        self._next_id += 1
        return req


def browse_session_matrix() -> TransitionMatrix:
    """A plausible browse-only navigation graph.

    Encodes the obvious flows: the front page leads to stories, a story
    leads to its comments, category browsing leads to stories, searches
    lead to stories, and most paths occasionally return to the front
    page.
    """
    names = [
        "StoriesOfTheDay",
        "ViewStory",
        "ViewComment",
        "BrowseCategories",
        "BrowseStoriesByCategory",
        "OlderStories",
        "SearchInStories",
        "ViewUserInfo",
    ]
    rows = {
        "StoriesOfTheDay": {
            "ViewStory": 0.55, "BrowseCategories": 0.2,
            "OlderStories": 0.1, "SearchInStories": 0.15,
        },
        "ViewStory": {
            "ViewComment": 0.5, "StoriesOfTheDay": 0.2,
            "ViewUserInfo": 0.1, "ViewStory": 0.2,
        },
        "ViewComment": {
            "ViewComment": 0.3, "ViewStory": 0.3,
            "ViewUserInfo": 0.1, "StoriesOfTheDay": 0.3,
        },
        "BrowseCategories": {
            "BrowseStoriesByCategory": 0.8, "StoriesOfTheDay": 0.2,
        },
        "BrowseStoriesByCategory": {
            "ViewStory": 0.6, "BrowseCategories": 0.2,
            "BrowseStoriesByCategory": 0.2,
        },
        "OlderStories": {
            "ViewStory": 0.6, "OlderStories": 0.25, "StoriesOfTheDay": 0.15,
        },
        "SearchInStories": {
            "ViewStory": 0.55, "SearchInStories": 0.3, "StoriesOfTheDay": 0.15,
        },
        "ViewUserInfo": {
            "StoriesOfTheDay": 0.5, "ViewStory": 0.5,
        },
    }
    matrix = np.zeros((len(names), len(names)))
    index = {n: i for i, n in enumerate(names)}
    for src, targets in rows.items():
        for dst, prob in targets.items():
            matrix[index[src], index[dst]] = prob
    return TransitionMatrix(names, matrix)
