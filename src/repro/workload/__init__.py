"""Workload substrate: RUBBoS interactions, mixes, traces, generators.

* :mod:`~repro.workload.rubbos` — the 24-servlet interaction catalog of
  the RUBBoS bulletin-board benchmark.
* :mod:`~repro.workload.mixes` — browse-only (CPU-intensive) and
  read/write (I/O-intensive) workload mixes.
* :mod:`~repro.workload.trace` / :mod:`~repro.workload.shapes` — bursty
  user traces, including the six realistic shapes of Fig. 9.
* :mod:`~repro.workload.generator` — open-loop (Poisson, time-varying
  rate) and closed-loop (fixed users, think time) request generators.
"""

from repro.workload.generator import ClosedLoopGenerator, OpenLoopGenerator, RequestFactory
from repro.workload.mixes import WorkloadMix, browse_only_mix, read_write_mix
from repro.workload.rubbos import CATALOG, Interaction
from repro.workload.sessions import (
    SessionRequestFactory,
    TransitionMatrix,
    browse_session_matrix,
)
from repro.workload.shapes import (
    TRACE_NAMES,
    big_spike,
    dual_phase,
    large_variations,
    make_trace,
    quickly_varying,
    slowly_varying,
    steep_tri_phase,
)
from repro.workload.trace import Trace

__all__ = [
    "ClosedLoopGenerator",
    "OpenLoopGenerator",
    "RequestFactory",
    "WorkloadMix",
    "browse_only_mix",
    "read_write_mix",
    "CATALOG",
    "Interaction",
    "SessionRequestFactory",
    "TransitionMatrix",
    "browse_session_matrix",
    "Trace",
    "TRACE_NAMES",
    "make_trace",
    "large_variations",
    "quickly_varying",
    "slowly_varying",
    "big_spike",
    "dual_phase",
    "steep_tri_phase",
]
