"""The six realistic bursty trace shapes of the paper's Fig. 9.

The paper uses real traces categorised by Gandhi et al. into the six
named shapes. We synthesise each shape deterministically (knots every
5 s over a 700 s window by default, peaking at ``max_users``), which
preserves the property the evaluation relies on: burst amplitude and
burst speed differ across the six categories.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import TraceError
from repro.workload.trace import Trace

__all__ = [
    "TRACE_NAMES",
    "make_trace",
    "large_variations",
    "quickly_varying",
    "slowly_varying",
    "big_spike",
    "dual_phase",
    "steep_tri_phase",
]

_KNOT_DT = 5.0


def _build(
    name: str,
    shape: Callable[[np.ndarray], np.ndarray],
    max_users: float,
    duration: float,
) -> Trace:
    if max_users <= 0 or duration <= 0:
        raise TraceError("max_users and duration must be positive")
    t = np.arange(0.0, duration + _KNOT_DT * 0.5, _KNOT_DT)
    frac = np.clip(shape(t / duration), 0.02, 1.0)
    return Trace(name, t, frac * max_users)


def large_variations(max_users: float = 7500.0, duration: float = 700.0) -> Trace:
    """Repeated wide swings between light and near-peak load.

    Swing periods are a few hundred seconds (as in the Gandhi traces):
    steep enough to force scaling, gradual enough that a 15 s VM
    preparation period is not hopeless — the regime where the *quality*
    of the scaling decision (not raw provisioning lag) dominates.
    """

    def shape(x: np.ndarray) -> np.ndarray:
        return (
            0.52
            + 0.30 * np.sin(2 * np.pi * (x * 2.0 - 0.177))
            + 0.16 * np.sin(2 * np.pi * (x * 4.5 - 0.050))
        )

    return _build("large_variations", shape, max_users, duration)


def quickly_varying(max_users: float = 7500.0, duration: float = 700.0) -> Trace:
    """Fast medium-amplitude oscillation around a mid-level load."""

    def shape(x: np.ndarray) -> np.ndarray:
        return (
            0.43
            + 0.26 * np.sin(2 * np.pi * (x * 8.0 - 0.25))
            + 0.08 * np.sin(2 * np.pi * (x * 17.0 + 0.10))
        )

    return _build("quickly_varying", shape, max_users, duration)


def slowly_varying(max_users: float = 7500.0, duration: float = 700.0) -> Trace:
    """A single slow ramp to peak and back."""

    def shape(x: np.ndarray) -> np.ndarray:
        return 0.18 + 0.82 * np.sin(np.pi * x) ** 2

    return _build("slowly_varying", shape, max_users, duration)


def big_spike(max_users: float = 7500.0, duration: float = 700.0) -> Trace:
    """A moderate baseline with one sharp, tall burst (Slashdot effect)."""

    def shape(x: np.ndarray) -> np.ndarray:
        spike = np.exp(-(((x - 0.42) / 0.07) ** 2))
        return 0.22 + 0.78 * spike

    return _build("big_spike", shape, max_users, duration)


def dual_phase(max_users: float = 7500.0, duration: float = 700.0) -> Trace:
    """A low plateau followed by a sustained high plateau."""

    def shape(x: np.ndarray) -> np.ndarray:
        # Smooth logistic transition at 45 % of the run (~45 s wide).
        step = 1.0 / (1.0 + np.exp(-(x - 0.45) * 60.0))
        return 0.22 + 0.68 * step

    return _build("dual_phase", shape, max_users, duration)


def steep_tri_phase(max_users: float = 7500.0, duration: float = 700.0) -> Trace:
    """Three load levels with steep transitions between them."""

    def shape(x: np.ndarray) -> np.ndarray:
        step1 = 1.0 / (1.0 + np.exp(-(x - 0.33) * 90.0))
        step2 = 1.0 / (1.0 + np.exp(-(x - 0.66) * 90.0))
        return 0.20 + 0.39 * step1 + 0.39 * step2

    return _build("steep_tri_phase", shape, max_users, duration)


_FACTORIES: dict[str, Callable[[float, float], Trace]] = {
    "large_variations": large_variations,
    "quickly_varying": quickly_varying,
    "slowly_varying": slowly_varying,
    "big_spike": big_spike,
    "dual_phase": dual_phase,
    "steep_tri_phase": steep_tri_phase,
}

TRACE_NAMES: tuple[str, ...] = tuple(_FACTORIES)


def make_trace(
    name: str, max_users: float = 7500.0, duration: float = 700.0
) -> Trace:
    """Build one of the six named traces by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise TraceError(
            f"unknown trace {name!r}; expected one of {sorted(_FACTORIES)}"
        ) from None
    return factory(max_users, duration)
