"""Workload traces: number of concurrent users over time."""

from __future__ import annotations

import csv
import os

import numpy as np

from repro.errors import TraceError

__all__ = ["Trace"]


class Trace:
    """A piecewise-linear user-population trace ``users(t)``.

    Times are seconds from experiment start; user counts are
    interpolated linearly between knots, matching the shape plots in
    the paper's Fig. 9.
    """

    def __init__(self, name: str, times, users) -> None:
        t = np.asarray(times, dtype=float)
        u = np.asarray(users, dtype=float)
        if t.ndim != 1 or u.ndim != 1 or t.size != u.size or t.size < 2:
            raise TraceError(
                f"trace {name!r}: need equal-length 1-D times/users with >= 2 points"
            )
        if np.any(np.diff(t) <= 0):
            raise TraceError(f"trace {name!r}: times must be strictly increasing")
        if np.any(u < 0):
            raise TraceError(f"trace {name!r}: user counts must be non-negative")
        if t[0] != 0.0:
            raise TraceError(f"trace {name!r}: must start at t=0, got {t[0]!r}")
        self.name = name
        self.times = t
        self.users = u

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Trace length in seconds."""
        return float(self.times[-1])

    @property
    def max_users(self) -> float:
        """Peak user population."""
        return float(self.users.max())

    def users_at(self, t: float) -> float:
        """Interpolated population at time ``t`` (clamped to the ends)."""
        return float(np.interp(t, self.times, self.users))

    def sample(self, dt: float) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(grid_times, grid_users)`` sampled every ``dt``."""
        if dt <= 0:
            raise TraceError(f"sample dt must be > 0, got {dt!r}")
        grid = np.arange(0.0, self.duration + dt * 0.5, dt)
        return grid, np.interp(grid, self.times, self.users)

    # ------------------------------------------------------------------
    def scaled(self, user_factor: float = 1.0, time_factor: float = 1.0) -> "Trace":
        """Return a copy with populations and/or the timeline rescaled.

        ``user_factor`` implements the experiment load-scaling knob;
        ``time_factor`` compresses or stretches the timeline (used by
        fast test runs).
        """
        if user_factor <= 0 or time_factor <= 0:
            raise TraceError("scale factors must be positive")
        return Trace(
            self.name,
            self.times * time_factor,
            self.users * user_factor,
        )

    def truncated(self, duration: float) -> "Trace":
        """Return the first ``duration`` seconds of the trace."""
        if duration <= 0:
            raise TraceError(f"duration must be > 0, got {duration!r}")
        if duration >= self.duration:
            return self
        keep = self.times < duration
        t = np.append(self.times[keep], duration)
        u = np.append(self.users[keep], self.users_at(duration))
        return Trace(self.name, t, u)

    # ------------------------------------------------------------------
    # CSV round-trip (replay your own production traces)
    # ------------------------------------------------------------------
    @classmethod
    def from_csv(cls, path: str, name: str | None = None) -> "Trace":
        """Load a trace from a two-column CSV (``t_s,users``).

        A header row is detected and skipped; the first knot must be at
        t = 0 (prepend one if your trace starts later). This is how
        real production traces — the paper replays traces categorised
        by Gandhi et al. — are brought into the harness.
        """
        times: list[float] = []
        users: list[float] = []
        try:
            with open(path, newline="") as fh:
                for row in csv.reader(fh):
                    if not row or len(row) < 2:
                        continue
                    try:
                        t, u = float(row[0]), float(row[1])
                    except ValueError:
                        continue  # header or comment row
                    times.append(t)
                    users.append(u)
        except OSError as exc:
            raise TraceError(f"cannot read trace file {path!r}: {exc}") from exc
        if not times:
            raise TraceError(f"trace file {path!r} contains no data rows")
        trace_name = name or os.path.splitext(os.path.basename(path))[0]
        return cls(trace_name, times, users)

    def to_csv(self, path: str) -> str:
        """Write the trace knots as ``t_s,users`` CSV; returns the path."""
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["t_s", "users"])
            writer.writerows(zip(self.times, self.users))
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Trace({self.name!r}, duration={self.duration:.0f}s, "
            f"max_users={self.max_users:.0f})"
        )
