"""The RUBBoS interaction catalog.

RUBBoS models a Slashdot-style bulletin board with 24 servlets. Each
entry carries per-tier demand multipliers relative to the workload's
base demands (so "ViewStory" is an average read, "Search" is a heavy
DB read, "StoreStory" is a write with disk cost) plus a write flag used
by the read/write-mix workload mode.

The multipliers are calibration inputs — the paper does not publish
per-servlet demands — chosen so the two standard mixes land on the mean
demands used by the capacity calibration in
:mod:`repro.experiments.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Interaction", "CATALOG", "interaction_by_name"]


@dataclass(frozen=True, slots=True)
class Interaction:
    """One RUBBoS servlet and its relative resource footprint."""

    name: str
    web_mult: float
    app_mult: float
    db_mult: float
    write: bool = False


# name, web, app, db, write
CATALOG: tuple[Interaction, ...] = (
    Interaction("StoriesOfTheDay", 1.0, 1.0, 1.2),
    Interaction("ViewStory", 1.0, 1.0, 1.0),
    Interaction("ViewComment", 1.0, 0.9, 0.9),
    Interaction("ViewFullComment", 1.0, 1.1, 1.3),
    Interaction("BrowseCategories", 1.0, 0.6, 0.5),
    Interaction("BrowseStoriesByCategory", 1.0, 1.0, 1.1),
    Interaction("BrowseRegions", 1.0, 0.6, 0.5),
    Interaction("BrowseStoriesByRegion", 1.0, 1.0, 1.1),
    Interaction("OlderStories", 1.0, 1.0, 1.4),
    Interaction("SearchInStories", 1.0, 1.2, 2.0),
    Interaction("SearchInComments", 1.0, 1.2, 2.2),
    Interaction("SearchInUsers", 1.0, 1.0, 1.5),
    Interaction("ViewUserInfo", 1.0, 0.8, 0.8),
    Interaction("ModeratorConsole", 1.0, 0.7, 0.6),
    Interaction("ReviewStories", 1.0, 1.0, 1.2),
    Interaction("AuthorConsole", 1.0, 0.7, 0.6),
    Interaction("SubmitStoryForm", 1.0, 0.5, 0.2),
    Interaction("StoreStory", 1.0, 1.3, 2.5, write=True),
    Interaction("SubmitCommentForm", 1.0, 0.5, 0.3),
    Interaction("StoreComment", 1.0, 1.1, 1.8, write=True),
    Interaction("ModerateComment", 1.0, 0.9, 1.0),
    Interaction("StoreModeratorLog", 1.0, 0.8, 1.4, write=True),
    Interaction("RegisterUserForm", 1.0, 0.4, 0.2),
    Interaction("StoreRegisterUser", 1.0, 0.9, 1.6, write=True),
)


_BY_NAME = {i.name: i for i in CATALOG}


def interaction_by_name(name: str) -> Interaction:
    """Look up a catalog entry; raises ``KeyError`` with suggestions."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown RUBBoS interaction {name!r}; see repro.workload.rubbos.CATALOG"
        ) from None
