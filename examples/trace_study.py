#!/usr/bin/env python
"""Study a scaling framework across all six bursty workload categories.

Runs the chosen framework over every Fig. 9 trace shape, then reports
tail latencies and stability metrics (spike episodes against an SLA,
coefficient of variation) per trace — the raw material behind Table I.

Usage:
    python examples/trace_study.py [framework] [sla_ms]

    framework: ec2 | dcm | conscale   (default: conscale)
    sla_ms:    SLA threshold in ms for spike counting (default: 500)
"""

import sys

import numpy as np

from repro import ScenarioConfig, run_experiment
from repro.analysis.stats import fluctuation_summary
from repro.experiments.report import format_table
from repro.workload.shapes import TRACE_NAMES


def main() -> None:
    framework = sys.argv[1] if len(sys.argv) > 1 else "conscale"
    sla = float(sys.argv[2]) / 1000.0 if len(sys.argv) > 2 else 0.5

    rows = []
    for trace in TRACE_NAMES:
        config = ScenarioConfig(
            name=f"study-{trace}", trace_name=trace,
            load_scale=50, duration=400.0, seed=3,
        )
        print(f"running {framework} on {trace} ...")
        result = run_experiment(framework, config)
        tail = result.tail()
        bins = result.timeline(5.0)
        times = np.array([b.t_start for b in bins])
        p95s = np.array([b.p95_rt for b in bins])
        stability = fluctuation_summary(times, p95s, sla=sla)
        rows.append(
            (
                trace,
                round(tail.p95 * 1000, 1),
                round(tail.p99 * 1000, 1),
                stability.n_spikes,
                round(stability.time_above_sla, 1),
                round(stability.cov, 2),
            )
        )

    print()
    print(f"framework: {framework}, SLA: {sla * 1000:.0f} ms")
    print(format_table(
        ["trace", "p95_ms", "p99_ms", "sla_spikes", "time_over_sla_s", "rt_cov"],
        rows,
    ))
    worst = max(rows, key=lambda r: r[2])
    print(f"\nworst trace for {framework}: {worst[0]} "
          f"(p99 = {worst[2]} ms)")

    # Per-servlet breakdown on the worst trace: which interactions
    # dominate the tail there?
    config = ScenarioConfig(
        name="study-breakdown", trace_name=worst[0],
        load_scale=50, duration=400.0, seed=3,
    )
    result = run_experiment(framework, config)
    # by_interaction() already reports base-scale latencies.
    by_servlet = result.by_interaction()
    breakdown = sorted(
        (
            (name, len(lats), float(np.percentile(lats, 99)) * 1000)
            for name, lats in by_servlet.items()
            if len(lats) >= 50
        ),
        key=lambda row: -row[2],
    )[:5]
    print(f"\nslowest servlets on {worst[0]} (p99, ms):")
    print(format_table(["interaction", "requests", "p99_ms"],
                       [(n, c, round(p, 1)) for n, c, p in breakdown]))


if __name__ == "__main__":
    main()
