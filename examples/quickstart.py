#!/usr/bin/env python
"""Quickstart: compare EC2-AutoScaling against ConScale on one trace.

Runs the paper's headline experiment at laptop scale: the same bursty
workload against the same simulated 3-tier RUBBoS system, scaled once
with hardware-only EC2-AutoScaling and once with ConScale's SCT-driven
soft-resource adaption, then prints the tail-latency comparison and the
scaling timelines.

Usage:
    python examples/quickstart.py [trace_name]

Trace names: large_variations (default), quickly_varying,
slowly_varying, big_spike, dual_phase, steep_tri_phase.
"""

import sys

from repro import ScenarioConfig, run_experiment
from repro.experiments.report import format_table
from repro.scaling.actions import ActionLog


def main() -> None:
    trace = sys.argv[1] if len(sys.argv) > 1 else "large_variations"
    config = ScenarioConfig(
        name="quickstart",
        trace_name=trace,
        load_scale=50,  # 1/50th of the paper's 7,500 users; shape-preserving
        duration=700.0,  # the paper's ~12-minute window
        seed=3,
    )
    print(f"trace={trace}, peak users={config.max_users:.0f} "
          f"(simulated at 1/{config.load_scale:.0f} scale)\n")

    results = {}
    for framework in ("ec2", "conscale"):
        print(f"running {framework} ...")
        results[framework] = run_experiment(framework, config)

    rows = []
    for framework, result in results.items():
        tail = result.tail()
        rows.append(
            (
                framework,
                result.completed,
                round(tail.p50 * 1000, 1),
                round(tail.p95 * 1000, 1),
                round(tail.p99 * 1000, 1),
                int(result.vm_counts.max()),
            )
        )
    print()
    print(format_table(
        ["framework", "requests", "p50_ms", "p95_ms", "p99_ms", "max_vms"], rows
    ))

    ec2_p99 = results["ec2"].tail().p99
    cs_p99 = results["conscale"].tail().p99
    print(f"\nConScale p99 improvement over EC2-AutoScaling: "
          f"{ec2_p99 / cs_p99:.2f}x")

    print("\nConScale's soft-resource adaptions:")
    soft = [a for a in results["conscale"].actions
            if a.kind.startswith("soft")]
    print(ActionLog.render(soft[:15]) or "  (none)")


if __name__ == "__main__":
    main()
