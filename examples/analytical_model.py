#!/usr/bin/env python
"""Analytical queueing model vs. discrete-event simulation.

Solves the calibrated 3-tier system with exact Mean Value Analysis
(load-dependent stations — the same model family DCM trains on) and
overlays simulated measurements, demonstrating that the two independent
implementations agree — including the throughput *descent* past the
rational concurrency range, which plain M/M/k models cannot express.

Usage:
    python examples/analytical_model.py [max_users]
"""

import sys

from repro.experiments.calibration import Calibration
from repro.experiments.report import ascii_chart, format_table
from repro.ntier.app import NTierApplication, SoftResourceAllocation
from repro.ntier.server import Server, ServerConfig
from repro.qnet.network import predict_closed_loop
from repro.rng import RngRegistry
from repro.sim.engine import Simulator
from repro.workload.generator import ClosedLoopGenerator, RequestFactory
from repro.workload.mixes import browse_only_mix


def simulate(n, cal, mix, duration=30.0):
    sim = Simulator()
    app = NTierApplication(sim, SoftResourceAllocation(10**5, 10**5, 10**5))
    for tier in ("web", "app", "db"):
        app.attach_server(
            Server(sim, ServerConfig(f"{tier}-1", tier, cal.capacity(tier), 10**5))
        )
    rng = RngRegistry(23 + n)
    ClosedLoopGenerator(
        sim, app, n, RequestFactory(mix, rng.stream("d")), rng.stream("u"),
        think_time=0.0,
    ).start()
    sim.run(until=duration)
    return app.completed / duration


def main() -> None:
    n_max = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    cal = Calibration()
    mix = browse_only_mix(cal.base_demands)
    demands = {t: mix.mean_demand(t) for t in ("web", "app", "db")}
    capacities = {t: cal.capacity(t) for t in ("web", "app", "db")}
    prediction = predict_closed_loop(capacities, demands, n_max=n_max)

    sample_ns = sorted({1, 2, 4, 8, 12, 18, 25, 35, n_max} & set(range(1, n_max + 1)))
    rows = []
    for n in sample_ns:
        print(f"simulating N={n} ...")
        x_sim = simulate(n, cal, mix)
        x_mva, r_mva = prediction.result.at(n)
        rows.append((n, round(x_mva, 1), round(x_sim, 1),
                     round(100 * abs(x_sim - x_mva) / x_mva, 1)))

    print()
    print(format_table(
        ["users", "MVA_rps", "sim_rps", "error_%"], rows
    ))
    print()
    print(ascii_chart(
        list(prediction.result.populations),
        list(prediction.result.throughput),
        label="analytical closed-loop throughput [req/s] vs users "
              f"(bottleneck: {prediction.bottleneck})",
    ))
    print(
        "\nNote the descent past the knee: the load-dependent stations"
        "\ncarry the USL contention penalty, so the analytical model"
        "\nreproduces the paper's descending stage, not just saturation."
    )


if __name__ == "__main__":
    main()
