#!/usr/bin/env python
"""Watch the SCT model estimate a server's optimal concurrency online.

Builds a single bottleneck MySQL behind generous upstream tiers, drives
it with a saturated closed-loop population while the DB connection cap
ramps upward, and re-runs the SCT estimation every few seconds of
simulated time — printing how the rational concurrency range
``[Q_lower, Q_upper]`` sharpens as evidence accumulates:

* while only the ascending stage has been seen, the estimate is
  flagged ``unsaturated`` (ConScale would refuse to actuate on it);
* once the plateau and descending stage appear, the estimate locks
  onto the server's true optimum (saturation concurrency 10).

Usage:
    python examples/sct_live_estimation.py
"""

from repro.errors import EstimationError
from repro.experiments.calibration import Calibration, db_capacity_cpu
from repro.experiments.sweep import cap_ramp_scatter
from repro.sct.model import SCTModel
from repro.sct.tuples import tuples_from_samples
from repro.workload.mixes import browse_only_mix


def main() -> None:
    cal = Calibration()
    mix = browse_only_mix(cal.base_demands)
    capacity = db_capacity_cpu(cores=1.0)
    print(f"target server: 1-core MySQL, true saturation concurrency = "
          f"{capacity.saturation_concurrency:.0f}\n")

    samples, server = cap_ramp_scatter(
        capacity, mix, q_max=60, q_step=2, dwell=2.0, seed=7
    )
    model = SCTModel(bucket_width=2)

    print(f"{'sim time':>9}  {'tuples':>7}  estimate")
    print("-" * 64)
    horizon = 0.0
    step = 10.0
    while True:
        horizon += step
        window = [s for s in samples if s.t_end <= horizon]
        if len(window) == len(samples):
            break
        tuples = tuples_from_samples(window)
        try:
            est = model.estimate(tuples)
            print(f"{horizon:8.0f}s  {len(tuples):7d}  {est.describe()}")
        except EstimationError as exc:
            print(f"{horizon:8.0f}s  {len(tuples):7d}  (no estimate: {exc})")

    final = model.estimate(tuples_from_samples(samples))
    print("-" * 64)
    print(f"final estimate on {server}: {final.describe()}")
    print(f"recommended soft-resource allocation: {final.optimal} "
          f"(paper's 1-core MySQL: 10)")


if __name__ == "__main__":
    main()
