#!/usr/bin/env python
"""Extend the 3-tier deployment with a Memcached-style cache tier.

The paper notes the RUBBoS deployment can grow extra tiers on demand
(load balancer, cache). This example builds the same bottlenecked
system twice — without and with a cache tier — and shows how the cache
moves the bottleneck away from MySQL, raising capacity and changing
which soft resource matters (another "runtime environment change" the
SCT model has to follow).

Usage:
    python examples/cache_tier_extension.py [hit_ratio]
"""

import sys

import numpy as np

from repro.experiments.calibration import Calibration, ample_capacity, db_capacity_cpu
from repro.experiments.report import format_table
from repro.ntier.app import CACHE, DB, NTierApplication, SoftResourceAllocation
from repro.ntier.cache import CachePolicy
from repro.ntier.server import Server, ServerConfig
from repro.rng import RngRegistry
from repro.sim.engine import Simulator
from repro.workload.generator import ClosedLoopGenerator, RequestFactory
from repro.workload.mixes import browse_only_mix


def run(users: int, hit_ratio: float | None, seed: int = 5):
    """Closed-loop run; returns (throughput, mean RT ms, db util)."""
    rng = RngRegistry(seed)
    sim = Simulator()
    policy = (
        CachePolicy(rng.stream("cache"), hit_ratio=hit_ratio)
        if hit_ratio is not None
        else None
    )
    app = NTierApplication(
        sim, SoftResourceAllocation(100_000, 100_000, 40), cache_policy=policy
    )
    servers = [
        Server(sim, ServerConfig("web-1", "web", ample_capacity(), 100_000)),
        Server(sim, ServerConfig("app-1", "app", ample_capacity(), 100_000)),
        Server(sim, ServerConfig("db-1", DB, db_capacity_cpu(1.0), 100_000)),
    ]
    if policy is not None:
        servers.append(
            Server(sim, ServerConfig("cache-1", CACHE, ample_capacity(), 100_000))
        )
    for server in servers:
        app.attach_server(server)

    cal = Calibration()
    mix = browse_only_mix(cal.base_demands)
    factory = RequestFactory(mix, rng.stream("demand"))
    latencies = []
    app.on_complete(lambda r: latencies.append(r.response_time))
    ClosedLoopGenerator(
        sim, app, users, factory, rng.stream("users"), think_time=0.0
    ).start()
    duration = 20.0
    sim.run(until=duration)
    db = app.tiers[DB].servers[0]
    db.sync_monitors()
    return (
        len(latencies) / duration,
        float(np.mean(latencies)) * 1000,
        db.util_integral["cpu"] / duration,
    )


def main() -> None:
    hit_ratio = float(sys.argv[1]) if len(sys.argv) > 1 else 0.8
    rows = []
    for label, ratio in [("no cache", None), (f"cache (hit={hit_ratio:.0%})", hit_ratio)]:
        for users in (10, 20, 40, 80):
            print(f"running {label}, {users} users ...")
            tp, rt, util = run(users, ratio)
            rows.append((label, users, round(tp, 0), round(rt, 2), round(util, 2)))
    print()
    print(format_table(
        ["configuration", "users", "throughput_rps", "mean_rt_ms", "db_cpu"], rows
    ))
    print(
        "\nWith the cache tier the same MySQL serves several times the"
        "\nthroughput before saturating — the bottleneck (and therefore"
        "\nthe soft resource worth tuning) has moved."
    )


if __name__ == "__main__":
    main()
