#!/usr/bin/env python
"""Offline capacity planning with concurrency sweeps (the Fig. 3/7
methodology as a what-if tool).

Given a server configuration (CPU cores, workload mode, dataset size),
sweep the offered concurrency to find the pool size an operator should
configure — and show how the recommendation moves under three
environment changes the paper studies: vertical scaling, dataset
growth, and a workload-mode switch.

Usage:
    python examples/capacity_planning.py
"""

from repro.experiments.calibration import (
    Calibration,
    ample_capacity,
    app_capacity,
    db_capacity_cpu,
    db_capacity_io,
)
from repro.experiments.report import format_table
from repro.experiments.sweep import concurrency_sweep
from repro.workload.mixes import browse_only_mix, read_write_mix


def plan(label, target, capacities, mix, levels, dataset_scale=1.0):
    result = concurrency_sweep(
        target, capacities, mix, levels, duration=15.0,
        dataset_scale=dataset_scale,
    )
    q = result.q_lower()
    peak = result.peak_throughput()
    rt_at_q = next(
        p.response_time for p in result.points if p.concurrency == q
    )
    return (label, q, round(peak, 0), round(rt_at_q * 1000, 2))


def main() -> None:
    cal = Calibration()
    browse = browse_only_mix(cal.base_demands)
    readwrite = read_write_mix(cal.base_demands)
    ample = ample_capacity()
    db_levels = [2, 4, 6, 8, 10, 12, 15, 18, 20, 22, 25, 30, 40, 60]
    app_levels = [6, 10, 15, 20, 25, 28, 32, 40, 50, 60, 80]

    rows = []
    print("sweeping MySQL (1-core, browse-only) ...")
    rows.append(plan(
        "MySQL 1-core, browse", "db",
        {"web": ample, "app": ample, "db": db_capacity_cpu(1.0)},
        browse, db_levels,
    ))
    print("sweeping MySQL (2-core, browse-only) — vertical scaling ...")
    rows.append(plan(
        "MySQL 2-core, browse", "db",
        {"web": ample, "app": ample, "db": db_capacity_cpu(2.0)},
        browse, db_levels,
    ))
    print("sweeping MySQL (1-core, read/write mix) — workload switch ...")
    rows.append(plan(
        "MySQL 1-core, read/write", "db",
        {"web": ample, "app": ample, "db": db_capacity_io(1.0)},
        readwrite, [1, 2, 3, 4, 5, 6, 8, 10, 15, 20, 30],
    ))
    print("sweeping Tomcat (original dataset) ...")
    rows.append(plan(
        "Tomcat, original dataset", "app",
        {"web": ample, "app": app_capacity(1.0), "db": ample},
        browse, app_levels,
    ))
    print("sweeping Tomcat (doubled dataset) — system-state change ...")
    rows.append(plan(
        "Tomcat, 2x dataset", "app",
        {"web": ample, "app": app_capacity(1.0, dataset_scale=2.0), "db": ample},
        browse, app_levels, dataset_scale=2.0,
    ))

    print()
    print(format_table(
        ["configuration", "recommended pool size", "peak_tp_rps", "rt_at_opt_ms"],
        rows,
    ))
    print(
        "\nNote how every environment change moves the recommendation —"
        "\nthe reason the paper replaces static pre-profiling with the"
        "\nonline SCT model."
    )


if __name__ == "__main__":
    main()
