"""Tests for the calibration anchors and scenario configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.calibration import (
    Calibration,
    ample_capacity,
    app_capacity,
    db_capacity_cpu,
    db_capacity_io,
    default_calibration,
    web_capacity,
)
from repro.experiments.scenarios import ScenarioConfig


# ----------------------------------------------------------------------
# calibration anchors (the paper's measured numbers)
# ----------------------------------------------------------------------

def test_mysql_qlower_anchor():
    assert db_capacity_cpu(1.0).saturation_concurrency == pytest.approx(10.0)
    assert db_capacity_cpu(2.0).saturation_concurrency == pytest.approx(20.0)


def test_mysql_io_anchor():
    cap = db_capacity_io(1.0)
    assert cap.critical_resource.name == "disk"
    assert cap.saturation_concurrency == pytest.approx(5.0)


def test_tomcat_dataset_anchor():
    base = app_capacity(1.0, 1.0).saturation_concurrency
    enlarged = app_capacity(1.0, 2.0).saturation_concurrency
    reduced = app_capacity(1.0, 0.5).saturation_concurrency
    assert base == pytest.approx(20.0)
    assert enlarged == pytest.approx(base / 2**0.5, rel=0.01)
    assert reduced == pytest.approx(base * 2**0.5, rel=0.01)


def test_web_is_not_a_bottleneck():
    assert web_capacity().saturation_concurrency >= 100


def test_ample_capacity_is_huge():
    assert ample_capacity().saturation_concurrency >= 1000


def test_descending_stage_severity():
    """Two Tomcats' worth of default conns (~80) on one MySQL must cost
    at least half its peak capacity — the Fig. 10 collapse."""
    cap = db_capacity_cpu(1.0)
    assert cap.contention.penalty(80) < 0.5
    assert cap.contention.penalty(12) > 0.9


def test_calibration_capacity_builder():
    cal = Calibration(io_intensive=True)
    assert cal.capacity("db").critical_resource.name == "disk"
    cal2 = Calibration(db_cores=2.0)
    assert cal2.capacity("db").saturation_concurrency == pytest.approx(20.0)
    with pytest.raises(KeyError):
        cal.capacity("cache")


def test_default_calibration_tiers_balanced():
    """App and DB single-server peak throughputs must be within ~2x so
    both tiers scale during the evaluation runs (as in the paper)."""
    cal = default_calibration()
    from repro.workload.mixes import browse_only_mix

    mix = browse_only_mix(cal.base_demands)
    _, tp_db = cal.capacity("db").peak(mix.mean_demand("db"))
    _, tp_app = cal.capacity("app").peak(mix.mean_demand("app"))
    assert 0.5 < tp_app / tp_db < 2.0


# ----------------------------------------------------------------------
# scenario config
# ----------------------------------------------------------------------

def test_scenario_defaults():
    cfg = ScenarioConfig()
    assert cfg.topology == (1, 1, 1)
    assert cfg.soft.web_threads == 1000
    assert cfg.soft.app_threads == 60
    assert cfg.soft.db_connections == 40


def test_scenario_load_scaling_contract():
    cfg = ScenarioConfig(load_scale=25.0, max_users=7500.0)
    assert cfg.scaled_users == 300.0
    assert cfg.demand_scale == 25.0
    assert cfg.rt_scale == 25.0


def test_fine_interval_scales_with_sqrt():
    assert ScenarioConfig(load_scale=1.0).effective_fine_interval() == pytest.approx(0.05)
    assert ScenarioConfig(load_scale=25.0).effective_fine_interval() == pytest.approx(0.25)
    assert ScenarioConfig(
        load_scale=25.0, fine_interval=0.1
    ).effective_fine_interval() == 0.1


def test_scenario_validation():
    with pytest.raises(ConfigurationError):
        ScenarioConfig(load_scale=0.5)
    with pytest.raises(ConfigurationError):
        ScenarioConfig(workload_mode="mixed")
    with pytest.raises(ConfigurationError):
        ScenarioConfig(duration=0.0)


def test_with_update():
    cfg = ScenarioConfig().with_(seed=9, trace_name="big_spike")
    assert cfg.seed == 9
    assert cfg.trace_name == "big_spike"
    # original untouched (frozen)
    assert ScenarioConfig().seed == 1
