"""The experiment engine's contracts: spec identity, determinism,
parallel equivalence, and cache round-trips.

Execution-backend contracts (bit-identical artifacts on every backend,
file-queue lease recovery, retry caps, `repro worker`) live in
``test_backends.py``.

Runs here use a strongly reduced scale (load_scale 300, 60 s) so every
experiment finishes in well under a second.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.control.trace import DecisionTrace
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.artifact import (
    SCHEMA_VERSION,
    RunArtifact,
    RunOverrides,
    RunSpec,
    canonical,
    content_digest,
)
from repro.experiments.engine import ExperimentEngine, ResultCache
from repro.experiments.runner import execute_spec, run_experiment
from repro.experiments.scenarios import ScenarioConfig


def small_config(**kwargs) -> ScenarioConfig:
    defaults = dict(
        name="engine-test", trace_name="dual_phase",
        load_scale=300.0, duration=60.0, seed=2,
    )
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


@pytest.fixture(scope="module")
def ec2_artifact() -> RunArtifact:
    return execute_spec(RunSpec("ec2", small_config()))


# ----------------------------------------------------------------------
# canonical encoding and spec identity
# ----------------------------------------------------------------------

def test_digest_stable_across_instances():
    a = RunSpec("ec2", small_config())
    b = RunSpec("ec2", small_config())
    assert a.digest() == b.digest()
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1  # usable as dict/set keys


def test_digest_separates_every_axis():
    base = RunSpec("ec2", small_config())
    assert RunSpec("conscale", small_config()).digest() != base.digest()
    assert RunSpec("ec2", small_config(seed=3)).digest() != base.digest()
    assert RunSpec("ec2", small_config(duration=61.0)).digest() != base.digest()
    with_headroom = RunSpec(
        "conscale", small_config(), RunOverrides.from_params({"headroom": 1.3})
    )
    assert with_headroom.digest() != RunSpec(
        "conscale", small_config()
    ).digest()


def test_unknown_framework_rejected():
    with pytest.raises(ConfigurationError):
        RunSpec("k8s", small_config())


def test_canonical_rejects_unknown_objects():
    class Opaque:
        pass

    with pytest.raises(ConfigurationError):
        canonical(Opaque())


def test_canonical_handles_floats_and_arrays():
    assert canonical(0.1) == canonical(0.1)
    assert canonical(0.1) != canonical(0.2)
    assert canonical(np.arange(3.0)) == canonical(np.arange(3.0))
    assert canonical(np.arange(3.0)) != canonical(np.arange(4.0))
    assert content_digest({"b": 1, "a": 2}) == content_digest({"a": 2, "b": 1})


# ----------------------------------------------------------------------
# determinism: same spec -> bit-identical artifact
# ----------------------------------------------------------------------

def test_same_spec_twice_is_bit_identical():
    spec = RunSpec("conscale", small_config())
    first = execute_spec(spec)
    second = execute_spec(spec)
    assert first.signature() == second.signature()
    assert np.array_equal(first.latencies, second.latencies)
    assert np.array_equal(first.vm_counts, second.vm_counts)
    assert first.estimates.keys() == second.estimates.keys()
    for tier, hist in first.estimates.items():
        other = second.estimates[tier]
        assert [(e.time, e.optimal) for e in hist] == [
            (e.time, e.optimal) for e in other
        ]


def test_parallel_matches_inline(tmp_path):
    specs = [RunSpec(fw, small_config()) for fw in ("ec2", "conscale")]
    inline = ExperimentEngine(jobs=1, use_cache=False).run_many(specs)
    parallel = ExperimentEngine(
        jobs=2, cache_dir=str(tmp_path / "cache")
    ).run_many(specs)
    for a, b in zip(inline, parallel):
        assert a.signature() == b.signature()


def test_artifact_pickle_roundtrip(ec2_artifact):
    clone = pickle.loads(pickle.dumps(ec2_artifact))
    assert clone.signature() == ec2_artifact.signature()
    assert clone.spec == ec2_artifact.spec


# ----------------------------------------------------------------------
# the result cache
# ----------------------------------------------------------------------

def test_cache_roundtrip_identical(tmp_path):
    cache_dir = str(tmp_path / "cache")
    spec = RunSpec("ec2", small_config())
    hot = ExperimentEngine(cache_dir=cache_dir)
    fresh = hot.run(spec)
    assert hot.stats.misses == 1 and hot.stats.stores == 1

    cold = ExperimentEngine(cache_dir=cache_dir)
    cached = cold.run(spec)
    assert cold.stats.hits == 1 and cold.executed == 0
    assert cached.signature() == fresh.signature()
    # figure-level consumption of a cached artifact matches in-memory
    fresh_bins = fresh.timeline(5.0)
    cached_bins = cached.timeline(5.0)
    assert fresh_bins == cached_bins
    assert cached.tail().p99 == fresh.tail().p99


def test_no_cache_writes_nothing(tmp_path):
    cache_dir = str(tmp_path / "cache")
    engine = ExperimentEngine(cache_dir=cache_dir, use_cache=False)
    engine.run(RunSpec("ec2", small_config()))
    assert not os.path.exists(cache_dir)
    assert engine.stats.hits == engine.stats.misses == 0


def test_cache_invalidates_corrupt_entry(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.store("deadbeef", {"x": 1})
    path = cache.path("deadbeef")
    with open(path, "wb") as fh:
        fh.write(b"not a pickle")
    assert cache.load("deadbeef") is None
    assert cache.stats.invalidations == 1
    assert not os.path.exists(path)


def test_cache_invalidates_schema_mismatch(tmp_path):
    cache = ResultCache(str(tmp_path))
    path = cache.path("cafef00d")
    os.makedirs(str(tmp_path), exist_ok=True)
    with open(path, "wb") as fh:
        pickle.dump(
            {"schema": SCHEMA_VERSION + 1, "key": "cafef00d", "payload": 1}, fh
        )
    assert cache.load("cafef00d") is None
    assert cache.stats.invalidations == 1


def test_cache_rejects_pathy_keys(tmp_path):
    cache = ResultCache(str(tmp_path))
    with pytest.raises(ConfigurationError):
        cache.path("../escape")


def test_worker_errors_propagate(tmp_path):
    engine = ExperimentEngine(jobs=2, cache_dir=str(tmp_path))
    with pytest.raises(ExperimentError):
        engine.run_tasks(_raise_for_two, [1, 2], labels=["one", "two"])


def _raise_for_two(n: int) -> int:
    if n == 2:
        raise ExperimentError("boom")
    return n


def test_progress_events_sequence(tmp_path):
    events = []
    engine = ExperimentEngine(
        cache_dir=str(tmp_path / "c"), progress=events.append
    )
    spec = RunSpec("ec2", small_config())
    engine.run(spec)
    assert [e.kind for e in events] == ["start", "done", "stored"]
    engine2 = ExperimentEngine(
        cache_dir=str(tmp_path / "c"), progress=events.append
    )
    engine2.run(spec)
    assert events[-1].kind == "hit"
    assert all(e.label == spec.label for e in events)


# ----------------------------------------------------------------------
# artifact persistence helpers
# ----------------------------------------------------------------------

def test_save_load_artifact(tmp_path, ec2_artifact):
    from repro.experiments.persistence import load_artifact, save_artifact

    path = str(tmp_path / "run.pkl")
    save_artifact(ec2_artifact, path)
    loaded = load_artifact(path)
    assert loaded.signature() == ec2_artifact.signature()
    with open(path, "wb") as fh:
        fh.write(b"garbage")
    with pytest.raises(ExperimentError):
        load_artifact(path)


# ----------------------------------------------------------------------
# artifact surface used by figures/analysis
# ----------------------------------------------------------------------

def test_artifact_has_no_live_handles(ec2_artifact):
    assert not hasattr(ec2_artifact, "warehouse")
    assert not hasattr(ec2_artifact, "request_log")
    assert ec2_artifact.monitored_servers
    for name in ec2_artifact.monitored_servers:
        fine = ec2_artifact.fine_series[name]
        assert len(fine) > 0
        assert fine.t_end.shape == fine.throughput.shape


def test_run_experiment_wrapper_equals_spec_path(ec2_artifact):
    direct = run_experiment("ec2", small_config())
    assert direct.signature() == ec2_artifact.signature()


def test_headroom_override_changes_behaviour():
    base = execute_spec(RunSpec("conscale", small_config()))
    wide = execute_spec(
        RunSpec(
            "conscale", small_config(), RunOverrides.from_params({"headroom": 3.0})
        )
    )
    assert base.signature() != wide.signature()


# ----------------------------------------------------------------------
# decision-trace determinism and schema compatibility
# ----------------------------------------------------------------------

def test_trace_identical_sequential_parallel_cached(tmp_path):
    """The recorded decision trace is part of the determinism contract:
    inline, worker-process, and cache-returned artifacts agree."""
    spec = RunSpec("conscale", small_config())
    inline = ExperimentEngine(jobs=1, use_cache=False).run(spec)
    parallel = ExperimentEngine(
        jobs=2, cache_dir=str(tmp_path / "c")
    ).run_many([spec, RunSpec("ec2", small_config())])[0]
    cached = ExperimentEngine(cache_dir=str(tmp_path / "c")).run(spec)
    assert len(inline.actions) > 0
    assert inline.actions.keys() == parallel.actions.keys()
    assert inline.actions.keys() == cached.actions.keys()
    assert (
        content_digest(inline.actions.signature_key())
        == content_digest(parallel.actions.signature_key())
        == content_digest(cached.actions.signature_key())
    )


def test_trace_survives_artifact_pickle(ec2_artifact):
    clone = pickle.loads(pickle.dumps(ec2_artifact))
    assert clone.actions.all() == ec2_artifact.actions.all()
    assert clone.actions.noops(), "no-op ticks must survive serialisation"


def test_artifact_signature_covers_the_trace(ec2_artifact):
    """Tampering with the trace must change the artifact signature."""
    import copy
    from repro.control.events import DecisionEvent

    tampered = copy.copy(ec2_artifact)
    tampered.actions = DecisionTrace(
        ec2_artifact.actions.all()
        + [DecisionEvent(1e6, "scale_out_started", "db")]
    )
    assert tampered.signature() != ec2_artifact.signature()


def test_empty_trace_artifact_roundtrips(ec2_artifact):
    import copy

    bare = copy.copy(ec2_artifact)
    bare.actions = DecisionTrace()
    clone = pickle.loads(pickle.dumps(bare))
    assert len(clone.actions) == 0
    assert clone.signature() == bare.signature()


def test_legacy_schema_artifact_still_loads(tmp_path, ec2_artifact):
    """Schema-1 artifacts (pre-bus ActionLog era) load; unknown future
    schemas are rejected."""
    import copy
    from repro.experiments.persistence import load_artifact, save_artifact

    legacy = copy.copy(ec2_artifact)
    legacy.schema = 1
    path = str(tmp_path / "legacy.pkl")
    save_artifact(legacy, path)
    assert load_artifact(path).schema == 1

    future = copy.copy(ec2_artifact)
    future.schema = SCHEMA_VERSION + 1
    save_artifact(future, str(tmp_path / "future.pkl"))
    with pytest.raises(ExperimentError, match="schema"):
        load_artifact(str(tmp_path / "future.pkl"))


def test_result_summary_excludes_noops(ec2_artifact):
    from repro.experiments.persistence import result_summary

    summary = result_summary(ec2_artifact)
    assert summary["noop_ticks"] == len(ec2_artifact.actions.noops())
    assert all(a["kind"] != "noop" for a in summary["actions"])
    assert all("reason" in a and "source" in a for a in summary["actions"])


# ----------------------------------------------------------------------
# CLI integration (cheap grid)
# ----------------------------------------------------------------------

def test_cli_table1_jobs_and_cache(capsys, tmp_path, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    argv = [
        "table1", "--scale", "300", "--duration", "60", "--seed", "2",
        "--jobs", "2", "--traces", "dual_phase",
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "dual_phase" in first
    assert "0 hit(s), 2 miss(es)" in first

    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "2 hit(s), 0 miss(es)" in second
    # identical table content from cache
    assert [ln for ln in second.splitlines() if "dual_phase" in ln] == [
        ln for ln in first.splitlines() if "dual_phase" in ln
    ]

    assert main(argv + ["--no-cache"]) == 0
    third = capsys.readouterr().out
    assert "hit(s)" not in third
