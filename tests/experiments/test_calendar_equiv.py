"""Tests for the calendar-equivalence harness (heap vs wheel)."""

import pytest

import repro.experiments.calendar_equiv as equiv_mod
from repro.errors import CalendarDivergenceError
from repro.experiments.artifact import RunSpec
from repro.experiments.calendar_equiv import (
    CalendarCheckReport,
    default_equivalence_specs,
    run_calendar_check,
    run_equivalence_suite,
)
from repro.experiments.scenarios import ScenarioConfig
from repro.workload.shapes import TRACE_NAMES


def _spec(duration: float = 30.0) -> RunSpec:
    return RunSpec(
        framework="conscale",
        config=ScenarioConfig(
            name="calequiv-test", trace_name="dual_phase",
            load_scale=300.0, duration=duration, seed=2,
        ),
    )


def test_clean_check_reports_matching_signature():
    report = run_calendar_check(_spec())
    assert isinstance(report, CalendarCheckReport)
    assert len(report.signature) == 64  # sha256 hex
    assert report.events_executed > 0
    assert "compactions" in report.wheel_stats
    text = report.describe()
    assert "calendars equivalent" in text
    assert report.signature[:12] in text


def test_report_digest_matches_spec():
    spec = _spec()
    assert run_calendar_check(spec).spec_digest == spec.digest()


def test_divergence_raises_naming_surfaces(monkeypatch):
    """A calendar-dependent observable must be reported as a divergence,
    not silently accepted."""
    real_execute = equiv_mod.execute_spec

    def skewed_execute(spec, sim=None):
        result = real_execute(spec, sim=sim)
        if sim is not None and sim.calendar == "wheel":
            # Corrupt one observable surface for the wheel run only.
            object.__setattr__(result, "completed", result.completed + 1)
        return result

    monkeypatch.setattr(equiv_mod, "execute_spec", skewed_execute)
    with pytest.raises(CalendarDivergenceError, match="calendar divergence"):
        run_calendar_check(_spec())


def test_default_specs_cover_all_traces_plus_faulted():
    specs = default_equivalence_specs(duration=20.0)
    assert len(specs) == len(TRACE_NAMES) + 1
    assert [s.config.trace_name for s in specs[:-1]] == list(TRACE_NAMES)
    faulted = specs[-1]
    assert faulted.faults is not None and len(faulted.faults.specs) == 2
    # Two app replicas so the mid-run crash leaves the tier routable.
    assert faulted.config.topology == (1, 2, 1)


def test_suite_runs_explicit_spec_list():
    reports = run_equivalence_suite([_spec(20.0)])
    assert len(reports) == 1
    assert reports[0].events_executed > 0


def test_default_sweep_is_clean_at_head():
    """The acceptance gate: all six trace shapes plus the faulted
    storyline produce byte-identical artifacts under both calendars."""
    reports = run_equivalence_suite()
    assert len(reports) == len(TRACE_NAMES) + 1
    assert all(r.events_executed > 0 for r in reports)
    # Distinct scenarios, distinct artifacts — the comparison is not
    # vacuously passing on empty/identical runs.
    assert len({r.signature for r in reports}) == len(reports)
