"""Smoke-level behavioural tests for the figure harnesses.

Each figure function runs at a strongly reduced scale here; the full
regeneration lives in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.experiments import figures as F


@pytest.fixture(scope="module")
def fig10_small():
    return F.figure10(load_scale=50, duration=400, seed=3)


def test_figure9_traces_complete():
    data = F.figure9()
    assert len(data.traces) == 6
    for name, (t, u) in data.traces.items():
        assert t[-1] == pytest.approx(700.0)
        assert u.max() > 0
    text = data.render()
    assert "big_spike" in text


def test_figure9_csv(tmp_path):
    paths = F.figure9().to_csv(str(tmp_path))
    assert len(paths) == 6


def test_figure7_qlower_shifts():
    data = F.figure7(duration=10.0)
    shifts = data.shifts()
    v_before, v_after = shifts["vertical_scaling"]
    assert v_after > 1.5 * v_before  # 10 -> 20
    d_before, d_after = shifts["dataset_size"]
    assert d_after < d_before  # enlarged dataset lowers the optimum
    w_before, w_after = shifts["workload_type"]
    assert w_after < w_before  # I/O workload lowers it drastically
    assert w_after <= 8


def test_figure3_vertical_scaling_direction():
    data = F.figure3(duration=10.0)
    q = {c.label: c.q_lower for c in data.cases}
    assert q["Tomcat 2-core"] > q["Tomcat 1-core"]
    assert q["Tomcat 2-core, 2x dataset"] < q["Tomcat 2-core"]
    assert "Q_lower" in data.render()


def test_figure6_sct_scatter():
    data = F.figure6(q_max=40, dwell=1.5)
    assert 8 <= data.estimate.q_lower <= 13
    assert data.estimate.saturation_observed
    assert len(data.tuples) > 200
    assert "SCT estimate" in data.render()


def test_figure5_window_around_scale_out(fig10_small):
    data = F.figure5(load_scale=100, duration=250, seed=11)
    assert data.scale_time > 1.0  # not the bootstrap
    assert np.all(np.diff(data.times) > 0)
    assert data.concurrency.max() > 1.0


def test_figure10_conscale_beats_ec2(fig10_small):
    data = fig10_small
    assert data.conscale.tail.p95 <= data.ec2.tail.p95 * 1.1
    # the worst 5s bin must be clearly better for ConScale
    worst_ec2 = float(np.nanmax(data.ec2.p95_rt))
    worst_cs = float(np.nanmax(data.conscale.p95_rt))
    assert worst_cs < worst_ec2
    assert "conscale" in data.render()


def test_figure10_csv(fig10_small, tmp_path):
    paths = fig10_small.to_csv(str(tmp_path))
    assert len(paths) == 4


def test_figure1_has_fluctuations():
    data = F.figure1(load_scale=100, duration=250, seed=11)
    tl = data.timeline
    assert tl.framework == "ec2"
    valid = tl.p95_rt[~np.isnan(tl.p95_rt)]
    assert valid.max() > 3 * np.median(valid)  # visible spikes
    assert tl.vm_counts.max() > tl.vm_counts[0]


def test_figure11_dcm_staleness():
    data = F.figure11(load_scale=100, duration=250, seed=11)
    assert data.dcm_trained_app_threads > 0
    est = data.final_conscale_app_threads()
    # with a reduced dataset the true optimum rises above DCM's
    # trained number; ConScale's online estimate must reflect that
    assert est is not None
    assert est > data.dcm_trained_app_threads


def test_table1_structure():
    data = F.table1(
        load_scale=100, duration=200, seed=11,
        traces=("dual_phase",),
    )
    rows = data.rows()
    assert len(rows) == 1
    text = data.render()
    assert "Table I" in text
