"""``repro diff``: decision-trace divergence between cached runs."""

from __future__ import annotations

import pytest

from repro.errors import CacheMissError, ExperimentError
from repro.experiments.artifact import RunOverrides, RunSpec
from repro.experiments.diff import diff_artifacts
from repro.experiments.engine import ExperimentEngine
from repro.experiments.runner import execute_spec

from tests.experiments.test_engine import small_config


@pytest.fixture(scope="module")
def base_artifact():
    return execute_spec(RunSpec("conscale", small_config()))


@pytest.fixture(scope="module")
def wide_artifact():
    return execute_spec(
        RunSpec("conscale", small_config(), RunOverrides.from_params({"headroom": 3.0}))
    )


def test_identical_specs_report_no_divergence(base_artifact):
    again = execute_spec(RunSpec("conscale", small_config()))
    diff = diff_artifacts(base_artifact, again)
    assert diff.identical
    assert diff.divergence is None
    assert "no divergence" in diff.render()
    assert diff.events_a == diff.events_b


def test_headroom_override_diverges(base_artifact, wide_artifact):
    diff = diff_artifacts(base_artifact, wide_artifact)
    assert not diff.identical
    d = diff.divergence
    assert d is not None and d.time > 0.0
    # at least one side has a concrete event at the divergence point
    assert d.event_a is not None or d.event_b is not None
    text = diff.render()
    assert "first divergence at t=" in text
    assert "headroom=3" in text  # the override is visible in the label


def test_diff_reports_cap_decision_deltas(base_artifact, wide_artifact):
    diff = diff_artifacts(base_artifact, wide_artifact)
    assert diff.cap_deltas, "ConScale runs must produce soft cap decisions"
    assert any(d.changed for d in diff.cap_deltas), (
        "a 3x headroom must move at least one cap decision"
    )
    kinds = {d.kind for d in diff.cap_deltas}
    assert kinds <= {
        "soft_app_threads", "soft_db_connections", "soft_web_threads"
    }
    assert "cap decisions" in diff.render()


def test_diff_reports_tail_deltas(base_artifact, wide_artifact):
    diff = diff_artifacts(base_artifact, wide_artifact)
    for side in (diff.tail_ms_a, diff.tail_ms_b):
        assert set(side) == {"p50", "p95", "p99"}
        assert all(v > 0 for v in side.values())
    assert "p99" in diff.render()


def test_diff_across_frameworks_same_scenario(base_artifact):
    ec2 = execute_spec(RunSpec("ec2", small_config()))
    diff = diff_artifacts(base_artifact, ec2)
    assert not diff.identical


def test_diff_rejects_different_scenarios(base_artifact):
    other = execute_spec(RunSpec("conscale", small_config(seed=3)))
    with pytest.raises(ExperimentError, match="different scenarios"):
        diff_artifacts(base_artifact, other)


def test_material_only_divergence(base_artifact, wide_artifact):
    diff = diff_artifacts(base_artifact, wide_artifact, include_noops=False)
    assert not diff.identical
    assert diff.divergence.event_a is None or not diff.divergence.event_a.is_noop


# ----------------------------------------------------------------------
# cache-only execution (what the CLI diff path relies on)
# ----------------------------------------------------------------------

def test_require_cached_raises_clean_miss(tmp_path):
    engine = ExperimentEngine(
        cache_dir=str(tmp_path / "cache"), require_cached=True
    )
    spec = RunSpec("conscale", small_config())
    with pytest.raises(CacheMissError, match=spec.label):
        engine.run(spec)
    assert engine.executed == 0


def test_require_cached_serves_stored_entries(tmp_path):
    cache_dir = str(tmp_path / "cache")
    spec = RunSpec("ec2", small_config())
    warm = ExperimentEngine(cache_dir=cache_dir)
    stored = warm.run(spec)
    strict = ExperimentEngine(cache_dir=cache_dir, require_cached=True)
    cached = strict.run(spec)
    assert cached.signature() == stored.signature()
    assert strict.executed == 0


def test_require_cached_needs_cache_enabled():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        ExperimentEngine(use_cache=False, require_cached=True)


# ----------------------------------------------------------------------
# CLI integration: run twice, diff, and the exit-2 miss path
# ----------------------------------------------------------------------

COMMON = ["--trace", "dual_phase", "--scale", "300",
          "--duration", "60", "--seed", "2"]


def test_cli_diff_end_to_end(capsys, tmp_path, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main(["run", "conscale", *COMMON]) == 0
    assert main(["run", "conscale", *COMMON, "--headroom", "3.0"]) == 0
    capsys.readouterr()

    assert main(["diff", "conscale", *COMMON, "--headroom-b", "3.0"]) == 0
    out = capsys.readouterr().out
    assert "first divergence at t=" in out
    assert "p99" in out

    # identical sides: clean "no divergence" report
    assert main(["diff", "conscale", *COMMON]) == 0
    assert "no divergence" in capsys.readouterr().out


def test_cli_diff_cold_cache_exits_2(capsys, tmp_path, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main(["diff", "conscale", *COMMON]) == 2
    err = capsys.readouterr().err
    assert "error:" in err
    assert "no usable cache entry" in err
    assert "Traceback" not in err


def test_cli_run_cached_only_exits_2(capsys, tmp_path, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main(["run", "ec2", *COMMON, "--cached-only"]) == 2
    assert "no usable cache entry" in capsys.readouterr().err


def test_cli_headroom_rejected_for_non_conscale(capsys, tmp_path, monkeypatch):
    # The deprecated --headroom alias maps onto the generic `headroom`
    # controller param, so on a framework without one the registry
    # rejects it with the schema spelled out.
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main(["run", "ec2", *COMMON, "--headroom", "2.0"]) == 2
    assert "has no param 'headroom'" in capsys.readouterr().err
