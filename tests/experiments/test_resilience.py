"""Acceptance tests for fault injection riding the experiment engine.

The ISSUE's acceptance criteria, end to end:

* a faulted ``RunSpec`` is exactly as deterministic as a fault-free one
  — same digest, identical artifact signature across repeated runs and
  across the serial and process backends;
* a crash run diffs against its fault-free twin (``repro diff`` works
  because the fault plan rides the spec, not the scenario) and its
  trace shows the ejection + recovery decisions;
* a telemetry-dropout run never applies a soft cap justified by an SCT
  estimate while the feed is stale (the controller holds, auditable via
  STALE_HOLD / stale no-ops), and its tail stays within 10 % of the
  fault-free twin's p95.

Runs use the reduced scale of ``test_engine`` (load_scale 300, 60 s).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.artifact import RunOverrides, RunSpec, content_digest
from repro.experiments.diff import diff_artifacts
from repro.experiments.engine import ExperimentEngine
from repro.experiments.resilience import (
    RESILIENCE_HEADERS,
    STORYLINE_HEADERS,
    resilience_fault_plans,
    resilience_rows,
    resilience_scenario,
    resilience_suite,
    storyline_rows,
    storyline_suite,
    storyline_ttr,
)
from repro.experiments.runner import execute_spec
from repro.faults.storyline import storyline_names


def small_resilience_config():
    return resilience_scenario(
        load_scale=300.0, duration=60.0, seed=2, trace_name="dual_phase"
    )


@pytest.fixture(scope="module")
def plans():
    return resilience_fault_plans(60.0)


@pytest.fixture(scope="module")
def baseline():
    return execute_spec(RunSpec("conscale", small_resilience_config()))


@pytest.fixture(scope="module")
def crashed(plans):
    return execute_spec(
        RunSpec("conscale", small_resilience_config(), faults=plans["crash"])
    )


@pytest.fixture(scope="module")
def dropped(plans):
    return execute_spec(
        RunSpec("conscale", small_resilience_config(), faults=plans["dropout"])
    )


# ----------------------------------------------------------------------
# determinism: faults do not cost reproducibility
# ----------------------------------------------------------------------

def test_fault_plan_rides_spec_not_scenario(plans):
    plain = RunSpec("conscale", small_resilience_config())
    faulted = RunSpec(
        "conscale", small_resilience_config(), faults=plans["crash"]
    )
    assert plain.digest() != faulted.digest()
    # The scenario digest is shared — the precondition for `repro diff`.
    assert content_digest(plain.config) == content_digest(faulted.config)
    assert faulted.label.endswith("!" + plans["crash"].describe())


def test_faulted_run_reproducible(crashed, plans):
    again = execute_spec(
        RunSpec("conscale", small_resilience_config(), faults=plans["crash"])
    )
    assert again.signature() == crashed.signature()


def test_faulted_run_identical_on_process_backend(crashed, plans):
    spec = RunSpec(
        "conscale", small_resilience_config(), faults=plans["crash"]
    )
    filler = RunSpec("ec2", small_resilience_config())  # forces a real pool
    via_pool = ExperimentEngine(jobs=2, use_cache=False).run_many(
        [spec, filler]
    )[0]
    assert via_pool.signature() == crashed.signature()


# ----------------------------------------------------------------------
# crash: diffable against the fault-free twin
# ----------------------------------------------------------------------

def test_crash_run_diffs_against_fault_free_twin(baseline, crashed):
    diff = diff_artifacts(baseline, crashed)
    assert diff.divergence is not None  # the traces demonstrably fork
    kinds = {e.kind for e in crashed.actions.faults()}
    assert {"fault_injected", "server_ejected"} <= kinds
    assert baseline.actions.faults() == []
    # The crash forces different *decisions*, not just noise: the
    # fault-aware loop pre-warms a replacement and suspends scale-in,
    # none of which the fault-free twin ever emits.
    crashed_kinds = {e.kind for e in crashed.actions}
    assert "prewarm_issued" in crashed_kinds
    assert "scalein_suspended" in crashed_kinds
    baseline_kinds = {e.kind for e in baseline.actions}
    assert "prewarm_issued" not in baseline_kinds
    assert "scalein_suspended" not in baseline_kinds


def test_crash_accounting_and_recovery(crashed):
    assert crashed.failed > 0
    summary = crashed.resilience
    assert summary is not None
    assert len(summary.episodes) == 1
    assert summary.episodes[0].kind == "crash"
    assert summary.episodes[0].failed == crashed.failed
    (recovery,) = summary.recovery_s
    assert np.isfinite(recovery)  # tail returned to pre-fault baseline


# ----------------------------------------------------------------------
# dropout: graceful degradation, never actuating on stale estimates
# ----------------------------------------------------------------------

def test_dropout_controller_holds_while_stale(dropped, plans):
    (spec,) = plans["dropout"]
    start, end = spec.window
    holds = [
        e for e in dropped.actions.all() if "telemetry stale" in e.reason
    ]
    assert holds, "no auditable hold decisions during the blackout"
    assert all(start < e.time <= end + 1.0 for e in holds)
    # The acceptance bar: no soft cap justified by an SCT estimate may
    # be applied while the feed is dark.
    acted_blind = [
        e
        for e in dropped.actions.all()
        if e.is_soft and e.estimate is not None and start < e.time <= end
    ]
    assert acted_blind == []


def test_dropout_tail_within_ten_percent_of_fault_free(baseline, dropped):
    p95_base = baseline.tail().p95
    p95_drop = dropped.tail().p95
    assert abs(p95_drop - p95_base) / p95_base < 0.10


# ----------------------------------------------------------------------
# the suite grid and its report rows
# ----------------------------------------------------------------------

def test_suite_shape_and_order():
    from repro.scaling.registry import registered_frameworks

    specs = resilience_suite(duration=60.0)
    # Every registered framework crossed with baseline + 5 fault classes.
    n_frameworks = len(registered_frameworks())
    assert n_frameworks >= 6  # the built-ins, plus any in-test plugins
    assert len(specs) == n_frameworks * 6
    # Stable order: frameworks outer, baseline first within each.
    assert [s.framework for s in specs[:6]] == ["ec2"] * 6
    assert specs[0].faults is None and specs[6].faults is None
    assert len({s.digest() for s in specs}) == len(specs)


def test_resilience_rows_match_headers(baseline, crashed):
    rows = resilience_rows([baseline, crashed])
    assert all(len(row) == len(RESILIENCE_HEADERS) for row in rows)
    assert rows[0][1] == "none"
    assert rows[1][1] == crashed.spec.faults.describe()
    assert rows[1][3] == crashed.failed
    assert rows[1][6] != "-"  # the crash episode got a recovery figure


def test_cli_resilience_subcommand(capsys, tmp_path, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main([
        "resilience", "--frameworks", "ec2", "--trace", "dual_phase",
        "--scale", "300", "--duration", "60", "--seed", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "crash:db[0]@24" in out
    assert "dropout" in out and "timeout" in out
    assert out.count("ec2") == 6


# ----------------------------------------------------------------------
# the storyline axis: compound incidents, aware vs blind pairs
# ----------------------------------------------------------------------

def _storyline_trio():
    """The conscale az-outage trio at test scale: free, aware, blind."""
    return storyline_suite(
        load_scale=300.0, duration=60.0, seed=2,
        frameworks=("conscale",), trace_name="dual_phase",
        storylines=("az-outage",),
    )


@pytest.fixture(scope="module")
def story_artifacts():
    return [execute_spec(spec) for spec in _storyline_trio()]


def test_storyline_suite_shape_and_pairing():
    specs = storyline_suite(duration=60.0)
    from repro.scaling.registry import registered_frameworks

    n_frameworks = len(registered_frameworks())
    n_stories = len(storyline_names())
    assert n_stories >= 4
    # Per framework: the fault-free twin, then an aware/blind pair per
    # storyline.
    assert len(specs) == n_frameworks * (1 + 2 * n_stories)
    per_fw = specs[: 1 + 2 * n_stories]
    assert per_fw[0].faults is None
    for aware, blind in zip(per_fw[1::2], per_fw[2::2]):
        assert aware.faults == blind.faults  # same lowered incident
        assert aware.overrides.controller_params is None
        assert dict(blind.overrides.controller_params) == {
            "fault_aware": False
        }
    assert len({s.digest() for s in specs}) == len(specs)


def test_storyline_rows_match_headers(story_artifacts):
    rows = storyline_rows(story_artifacts)
    assert all(len(row) == len(STORYLINE_HEADERS) for row in rows)
    free, aware, blind = rows
    assert free[1] == "none" and free[2] == "yes"
    assert aware[1] == "az-outage" and aware[2] == "yes"
    assert blind[1] == "az-outage" and blind[2] == "no"
    # The compound columns are populated for the storylined rows.
    assert aware[6] != "-" and aware[8] > 0


def test_storyline_ttr_prefers_the_fault_free_twin(story_artifacts):
    free, aware, _ = story_artifacts
    assert np.isnan(storyline_ttr(free))  # no episodes, nothing to score
    with_twin = storyline_ttr(aware, free)
    # Either way the capacity-restoration floor is part of the figure.
    assert np.isnan(with_twin) or with_twin >= aware.resilience.restore_s


def test_storylined_twins_diff_and_survive_the_process_backend(
    story_artifacts,
):
    free, aware, blind = story_artifacts
    diff = diff_artifacts(aware, blind)
    assert diff.divergence is not None  # awareness changes decisions
    specs = _storyline_trio()
    via_pool = ExperimentEngine(jobs=2, use_cache=False).run_many(specs)
    for serial, pooled in zip(story_artifacts, via_pool):
        assert pooled.signature() == serial.signature()


def test_cli_resilience_storylines(capsys, tmp_path, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main([
        "resilience", "--frameworks", "conscale", "--trace", "dual_phase",
        "--scale", "300", "--duration", "60", "--seed", "2",
        "--storylines", "az-outage",
    ]) == 0
    out = capsys.readouterr().out
    assert "az-outage" in out
    assert "ttr_s" in out and "worst_p99_ms" in out
    assert "yes" in out and "no" in out


def test_cli_resilience_unknown_storyline(capsys):
    from repro.cli import main

    assert main(["resilience", "--storylines", "meteor-strike"]) == 2
    err = capsys.readouterr().err
    assert "meteor-strike" in err and "az-outage" in err


def test_cli_run_storyline_reports_recovery_actions(
    capsys, tmp_path, monkeypatch
):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main([
        "run", "conscale", "--trace", "dual_phase", "--scale", "300",
        "--duration", "60", "--seed", "2", "--topology", "1,2,2",
        "--storyline", "az-outage:db:24:12",
    ]) == 0
    out = capsys.readouterr().out
    assert "conservation ok" in out
    assert "recovery actions:" in out
    assert "scalein_suspended=" in out and "prewarm_issued=" in out


def test_cli_faults_and_storyline_mutually_exclusive(capsys):
    from repro.cli import main

    assert main([
        "run", "conscale", "--trace", "dual_phase", "--scale", "300",
        "--duration", "60", "--faults", "crash:db:24",
        "--storyline", "az-outage",
    ]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_cli_trace_export_jsonl(capsys, tmp_path, monkeypatch):
    import json

    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main([
        "trace", "export", "conscale", "--trace", "dual_phase",
        "--scale", "300", "--duration", "60", "--seed", "2",
        "--topology", "1,2,2",
        "--storyline", "az-outage:db:24:12", "--jsonl",
    ]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    header = json.loads(lines[0])
    assert header["format"] == "repro-trace"
    assert header["storyline"] == "az-outage"
    assert header["events"] == len(lines) - 1
    events = [json.loads(line) for line in lines[1:]]
    kinds = {e["kind"] for e in events}
    assert "fault_injected" in kinds and "prewarm_issued" in kinds
    assert all(
        a["t"] <= b["t"] for a, b in zip(events, events[1:])
    )
