"""Acceptance tests for fault injection riding the experiment engine.

The ISSUE's acceptance criteria, end to end:

* a faulted ``RunSpec`` is exactly as deterministic as a fault-free one
  — same digest, identical artifact signature across repeated runs and
  across the serial and process backends;
* a crash run diffs against its fault-free twin (``repro diff`` works
  because the fault plan rides the spec, not the scenario) and its
  trace shows the ejection + recovery decisions;
* a telemetry-dropout run never applies a soft cap justified by an SCT
  estimate while the feed is stale (the controller holds, auditable via
  STALE_HOLD / stale no-ops), and its tail stays within 10 % of the
  fault-free twin's p95.

Runs use the reduced scale of ``test_engine`` (load_scale 300, 60 s).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.artifact import RunSpec, content_digest
from repro.experiments.diff import diff_artifacts
from repro.experiments.engine import ExperimentEngine
from repro.experiments.resilience import (
    RESILIENCE_HEADERS,
    resilience_fault_plans,
    resilience_rows,
    resilience_scenario,
    resilience_suite,
)
from repro.experiments.runner import execute_spec


def small_resilience_config():
    return resilience_scenario(
        load_scale=300.0, duration=60.0, seed=2, trace_name="dual_phase"
    )


@pytest.fixture(scope="module")
def plans():
    return resilience_fault_plans(60.0)


@pytest.fixture(scope="module")
def baseline():
    return execute_spec(RunSpec("conscale", small_resilience_config()))


@pytest.fixture(scope="module")
def crashed(plans):
    return execute_spec(
        RunSpec("conscale", small_resilience_config(), faults=plans["crash"])
    )


@pytest.fixture(scope="module")
def dropped(plans):
    return execute_spec(
        RunSpec("conscale", small_resilience_config(), faults=plans["dropout"])
    )


# ----------------------------------------------------------------------
# determinism: faults do not cost reproducibility
# ----------------------------------------------------------------------

def test_fault_plan_rides_spec_not_scenario(plans):
    plain = RunSpec("conscale", small_resilience_config())
    faulted = RunSpec(
        "conscale", small_resilience_config(), faults=plans["crash"]
    )
    assert plain.digest() != faulted.digest()
    # The scenario digest is shared — the precondition for `repro diff`.
    assert content_digest(plain.config) == content_digest(faulted.config)
    assert faulted.label.endswith("!" + plans["crash"].describe())


def test_faulted_run_reproducible(crashed, plans):
    again = execute_spec(
        RunSpec("conscale", small_resilience_config(), faults=plans["crash"])
    )
    assert again.signature() == crashed.signature()


def test_faulted_run_identical_on_process_backend(crashed, plans):
    spec = RunSpec(
        "conscale", small_resilience_config(), faults=plans["crash"]
    )
    filler = RunSpec("ec2", small_resilience_config())  # forces a real pool
    via_pool = ExperimentEngine(jobs=2, use_cache=False).run_many(
        [spec, filler]
    )[0]
    assert via_pool.signature() == crashed.signature()


# ----------------------------------------------------------------------
# crash: diffable against the fault-free twin
# ----------------------------------------------------------------------

def test_crash_run_diffs_against_fault_free_twin(baseline, crashed):
    diff = diff_artifacts(baseline, crashed)
    assert diff.divergence is not None  # the traces demonstrably fork
    kinds = {e.kind for e in crashed.actions.faults()}
    assert {"fault_injected", "server_ejected"} <= kinds
    assert baseline.actions.faults() == []
    # The surviving replica forces different decisions, not just noise.
    assert diff.events_a != diff.events_b


def test_crash_accounting_and_recovery(crashed):
    assert crashed.failed > 0
    summary = crashed.resilience
    assert summary is not None
    assert len(summary.episodes) == 1
    assert summary.episodes[0].kind == "crash"
    assert summary.episodes[0].failed == crashed.failed
    (recovery,) = summary.recovery_s
    assert np.isfinite(recovery)  # tail returned to pre-fault baseline


# ----------------------------------------------------------------------
# dropout: graceful degradation, never actuating on stale estimates
# ----------------------------------------------------------------------

def test_dropout_controller_holds_while_stale(dropped, plans):
    (spec,) = plans["dropout"]
    start, end = spec.window
    holds = [
        e for e in dropped.actions.all() if "telemetry stale" in e.reason
    ]
    assert holds, "no auditable hold decisions during the blackout"
    assert all(start < e.time <= end + 1.0 for e in holds)
    # The acceptance bar: no soft cap justified by an SCT estimate may
    # be applied while the feed is dark.
    acted_blind = [
        e
        for e in dropped.actions.all()
        if e.is_soft and e.estimate is not None and start < e.time <= end
    ]
    assert acted_blind == []


def test_dropout_tail_within_ten_percent_of_fault_free(baseline, dropped):
    p95_base = baseline.tail().p95
    p95_drop = dropped.tail().p95
    assert abs(p95_drop - p95_base) / p95_base < 0.10


# ----------------------------------------------------------------------
# the suite grid and its report rows
# ----------------------------------------------------------------------

def test_suite_shape_and_order():
    from repro.scaling.registry import registered_frameworks

    specs = resilience_suite(duration=60.0)
    # Every registered framework crossed with baseline + 5 fault classes.
    n_frameworks = len(registered_frameworks())
    assert n_frameworks >= 6  # the built-ins, plus any in-test plugins
    assert len(specs) == n_frameworks * 6
    # Stable order: frameworks outer, baseline first within each.
    assert [s.framework for s in specs[:6]] == ["ec2"] * 6
    assert specs[0].faults is None and specs[6].faults is None
    assert len({s.digest() for s in specs}) == len(specs)


def test_resilience_rows_match_headers(baseline, crashed):
    rows = resilience_rows([baseline, crashed])
    assert all(len(row) == len(RESILIENCE_HEADERS) for row in rows)
    assert rows[0][1] == "none"
    assert rows[1][1] == crashed.spec.faults.describe()
    assert rows[1][3] == crashed.failed
    assert rows[1][6] != "-"  # the crash episode got a recovery figure


def test_cli_resilience_subcommand(capsys, tmp_path, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main([
        "resilience", "--frameworks", "ec2", "--trace", "dual_phase",
        "--scale", "300", "--duration", "60", "--seed", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "crash:db[0]@24" in out
    assert "dropout" in out and "timeout" in out
    assert out.count("ec2") == 6
