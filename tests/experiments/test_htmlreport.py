"""Tests for the HTML/SVG report generator."""

import math
import xml.etree.ElementTree as ET

import pytest

from repro.errors import ExperimentError
from repro.experiments.htmlreport import (
    render_html_report,
    svg_line_chart,
    write_html_report,
)


def make_summary(framework="ec2", p99=300.0):
    return {
        "framework": framework,
        "scenario": {
            "name": "t", "trace": "dual_phase", "seed": 3,
            "duration_s": 200.0, "load_scale": 50.0, "max_users": 7500.0,
            "workload_mode": "browse", "topology": [1, 1, 1],
            "soft": [1000, 60, 40],
        },
        "requests": {"generated": 1000, "completed": 990},
        "tail_ms": {"mean": 50.0, "p50": 30.0, "p95": 120.0, "p99": p99,
                    "max": 900.0},
        "timeline": [
            {"t": float(t), "throughput_rps": 100.0 + t,
             "mean_rt_ms": 30.0, "p95_rt_ms": 40.0 + (t % 3) * 10}
            for t in range(0, 200, 5)
        ],
        "vms": {"t": [float(t) for t in range(0, 200, 10)],
                "count": [3 + t // 50 for t in range(0, 200, 10)]},
        "actions": [],
        "estimates": {},
    }


# ----------------------------------------------------------------------
# svg chart
# ----------------------------------------------------------------------

def test_svg_chart_is_valid_xml():
    svg = svg_line_chart(
        [("a", [0, 1, 2], [1.0, 2.0, 3.0]), ("b", [0, 1, 2], [3.0, 2.0, 1.0])],
        "demo", "x", "y",
    )
    root = ET.fromstring(svg)
    assert root.tag.endswith("svg")
    polylines = root.findall(".//{http://www.w3.org/2000/svg}polyline")
    assert len(polylines) == 2


def test_svg_chart_breaks_on_nan():
    svg = svg_line_chart(
        [("a", [0, 1, 2, 3, 4], [1.0, 2.0, math.nan, 4.0, 5.0])],
        "gaps", "x", "y",
    )
    root = ET.fromstring(svg)
    polylines = root.findall(".//{http://www.w3.org/2000/svg}polyline")
    assert len(polylines) == 2  # one gap -> two segments


def test_svg_chart_escapes_labels():
    svg = svg_line_chart([("a<b>", [0, 1], [1.0, 2.0])], 'x "quoted"', "x", "y")
    assert "a&lt;b&gt;" in svg
    ET.fromstring(svg)


def test_svg_chart_validation():
    with pytest.raises(ExperimentError):
        svg_line_chart([], "t", "x", "y")
    with pytest.raises(ExperimentError):
        svg_line_chart([("a", [0.0], [math.nan])], "t", "x", "y")


# ----------------------------------------------------------------------
# full report
# ----------------------------------------------------------------------

def test_report_contains_table_and_charts():
    page = render_html_report(
        [make_summary("ec2", 300.0), make_summary("conscale", 120.0)],
        title="comparison",
    )
    assert "<table>" in page
    assert page.count("<svg") == 3
    assert "ec2" in page and "conscale" in page
    assert "300.0" in page and "120.0" in page


def test_report_validation():
    with pytest.raises(ExperimentError):
        render_html_report([])


def test_write_report(tmp_path):
    path = write_html_report(
        [make_summary()], str(tmp_path / "out" / "report.html")
    )
    content = open(path).read()
    assert content.startswith("<!DOCTYPE html>")
    assert "</html>" in content


def test_report_from_real_run(tmp_path):
    from repro.experiments.persistence import result_summary
    from repro.experiments.runner import run_experiment
    from repro.experiments.scenarios import ScenarioConfig

    config = ScenarioConfig(
        name="html", trace_name="dual_phase", load_scale=150.0,
        duration=120.0, seed=2,
    )
    summaries = [
        result_summary(run_experiment(fw, config)) for fw in ("ec2", "conscale")
    ]
    path = write_html_report(summaries, str(tmp_path / "r.html"))
    content = open(path).read()
    assert content.count("<svg") == 3
    assert "conscale" in content
