"""Tests for slow-node fault injection."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.faults import inject_slow_node
from repro.ntier.app import DB
from repro.ntier.server import Server, ServerConfig
from repro.rng import RngRegistry
from repro.sim.engine import Simulator
from repro.workload.generator import ClosedLoopGenerator, RequestFactory

from tests.conftest import build_app, simple_capacity, tiny_mix


def test_validation():
    sim = Simulator()
    server = Server(sim, ServerConfig("db-1", "db", simple_capacity(), 10))
    with pytest.raises(ExperimentError):
        inject_slow_node(sim, server, at=1.0, slowdown=1.0)
    with pytest.raises(ExperimentError):
        inject_slow_node(sim, server, at=1.0, duration=0.0)


def test_capacity_degrades_and_restores():
    sim = Simulator()
    server = Server(sim, ServerConfig("db-1", "db", simple_capacity(8), 10))
    fault = inject_slow_node(sim, server, at=5.0, slowdown=4.0, duration=10.0)
    sim.run(until=6.0)
    assert fault.active
    assert server.capacity.saturation_concurrency == pytest.approx(2.0)
    sim.run(until=16.0)
    assert fault.ended and not fault.active
    assert server.capacity.saturation_concurrency == pytest.approx(8.0)
    assert fault.window == (5.0, 15.0)


def test_slow_node_raises_latency_then_recovers():
    sim = Simulator()
    app = build_app(sim, db_a_sat=10.0)
    rng = RngRegistry(3)
    latencies: list[tuple[float, float]] = []
    app.on_complete(lambda r: latencies.append((r.completion, r.response_time)))
    ClosedLoopGenerator(
        sim, app, 8, RequestFactory(tiny_mix(cv=0.0), rng.stream("d")),
        rng.stream("u"), think_time=0.0,
    ).start()
    db = app.tiers[DB].servers[0]
    inject_slow_node(sim, db, at=10.0, slowdown=8.0, duration=10.0)
    sim.run(until=35.0)

    def mean_rt(t0, t1):
        vals = [rt for (t, rt) in latencies if t0 <= t < t1]
        return float(np.mean(vals))

    before = mean_rt(2.0, 10.0)
    during = mean_rt(12.0, 20.0)
    after = mean_rt(25.0, 35.0)
    assert during > 3.0 * before
    assert after == pytest.approx(before, rel=0.2)


def test_leastconn_sheds_load_from_slow_replica():
    """With two DB replicas and leastconn, the degraded one serves a
    much smaller share of the completions during the fault window."""
    from repro.ntier.app import NTierApplication, SoftResourceAllocation

    sim = Simulator()
    soft = SoftResourceAllocation(10_000, 10_000, 10_000)
    app = NTierApplication(sim, soft)
    for name, tier, a_sat in [
        ("web-1", "web", 1000), ("app-1", "app", 1000),
        ("db-1", "db", 10), ("db-2", "db", 10),
    ]:
        app.attach_server(
            Server(sim, ServerConfig(name, tier, simple_capacity(a_sat), 100_000))
        )
    rng = RngRegistry(5)
    ClosedLoopGenerator(
        sim, app, 16, RequestFactory(tiny_mix(cv=0.0), rng.stream("d")),
        rng.stream("u"), think_time=0.0,
    ).start()
    db1, db2 = app.tiers[DB].servers
    fault = inject_slow_node(sim, db1, at=10.0, slowdown=8.0, duration=20.0)
    sim.run(until=10.0)
    c1_start, c2_start = db1.completions, db2.completions
    sim.run(until=30.0)
    slow_share = (db1.completions - c1_start) / max(
        1, (db1.completions - c1_start) + (db2.completions - c2_start)
    )
    assert slow_share < 0.35, f"slow replica still served {slow_share:.0%}"
    assert fault.ended
