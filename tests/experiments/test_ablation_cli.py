"""Tests for the ablation helpers and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.ablation import (
    sct_tolerance_ablation,
    sct_window_ablation,
)


# ----------------------------------------------------------------------
# ablation helpers (small parameterisations)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def tolerance_points():
    return sct_tolerance_ablation(
        tolerances=(0.03, 0.10), dwell=1.5, q_max=40
    )


def test_tolerance_ablation_widens_range(tolerance_points):
    narrow, wide = tolerance_points
    assert narrow.knob == 0.03 and wide.knob == 0.10
    assert (wide.q_upper - wide.q_lower) >= (narrow.q_upper - narrow.q_lower)


def test_window_ablation_flags_short_windows():
    points = sct_window_ablation(fractions=(0.1, 1.0), dwell=1.5, q_max=40)
    short, full = points
    assert short.note != ""  # unsaturated or failed
    assert full.q_lower is not None


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cli_traces(capsys):
    assert main(["traces"]) == 0
    out = capsys.readouterr().out
    assert "large_variations" in out
    assert "big_spike" in out


def test_cli_run(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main([
        "run", "ec2", "--scale", "150", "--duration", "100",
        "--trace", "dual_phase",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "p99_ms" in out
    assert "ec2" in out


def test_cli_sweep(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main([
        "sweep", "db", "--levels", "4,10,20,40", "--duration", "8",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Q_lower" in out


def test_cli_figure_9(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["figure", "9"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Fig.9" in out
    assert (tmp_path / "results" / "fig9_big_spike.csv").exists()


def test_cli_rejects_unknown_framework():
    with pytest.raises(SystemExit):
        main(["run", "k8s"])


# ----------------------------------------------------------------------
# result persistence
# ----------------------------------------------------------------------

def test_result_summary_roundtrip(tmp_path):
    from repro.experiments.persistence import load_summary, save_result
    from repro.experiments.runner import run_experiment
    from repro.experiments.scenarios import ScenarioConfig

    config = ScenarioConfig(
        name="persist", trace_name="dual_phase", load_scale=150.0,
        duration=120.0, seed=2,
    )
    result = run_experiment("ec2", config)
    path = save_result(result, str(tmp_path / "runs" / "ec2.json"))
    summary = load_summary(path)
    assert summary["framework"] == "ec2"
    assert summary["scenario"]["trace"] == "dual_phase"
    assert summary["requests"]["completed"] == result.completed
    assert summary["tail_ms"]["p99"] == pytest.approx(
        result.tail().p99 * 1000
    )
    assert len(summary["timeline"]) > 5
    assert summary["vms"]["count"][0] == 3


def test_load_summary_rejects_garbage(tmp_path):
    from repro.errors import ExperimentError
    from repro.experiments.persistence import load_summary

    bad = tmp_path / "bad.json"
    bad.write_text("{\"hello\": 1}")
    with pytest.raises(ExperimentError):
        load_summary(str(bad))
    with pytest.raises(ExperimentError):
        load_summary(str(tmp_path / "missing.json"))


def test_vm_seconds_cost_metric():
    from repro.experiments.runner import run_experiment
    from repro.experiments.scenarios import ScenarioConfig

    config = ScenarioConfig(
        name="cost", trace_name="dual_phase", load_scale=150.0,
        duration=120.0, seed=2,
    )
    result = run_experiment("ec2", config)
    cost = result.vm_seconds()
    # at least the 3 bootstrap VMs for the whole sampled window
    assert cost >= 3 * (result.vm_times[-1] - result.vm_times[0]) * 0.99
    # and bounded by max_vms * window
    window = result.vm_times[-1] - result.vm_times[0]
    assert cost <= result.vm_counts.max() * window * 1.01


def test_cli_predict(capsys):
    code = main(["predict", "--users", "25"])
    assert code == 0
    out = capsys.readouterr().out
    assert "bottleneck tier: db" in out
    assert "throughput_rps" in out


def test_cli_compare_with_html(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    html = tmp_path / "cmp.html"
    code = main([
        "compare", "--trace", "dual_phase", "--scale", "150",
        "--duration", "100", "--html", str(html),
    ])
    assert code == 0
    content = html.read_text()
    assert content.count("<svg") == 3
    for fw in ("ec2", "dcm", "conscale", "predictive"):
        assert fw in content


def test_scenario_drift_check_flag():
    from repro.experiments.scenarios import ScenarioConfig

    assert ScenarioConfig().sct_drift_check is False
    assert ScenarioConfig(sct_drift_check=True).sct_drift_check is True


def test_cli_run_calendar_check(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main([
        "run", "conscale", "--scale", "150", "--duration", "60",
        "--trace", "dual_phase", "--calendar-check",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "calendars equivalent" in out
    assert "calendar equivalence ok" in out


def test_cli_run_heap_calendar(capsys, tmp_path, monkeypatch):
    """--calendar heap executes directly (no cache) on the heap loop."""
    monkeypatch.chdir(tmp_path)
    code = main([
        "run", "conscale", "--scale", "150", "--duration", "60",
        "--trace", "dual_phase", "--calendar", "heap",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "p99_ms" in out
    assert not (tmp_path / "results" / "cache").exists()


def test_cli_run_profile_writes_pstats(capsys, tmp_path, monkeypatch):
    import pstats

    monkeypatch.chdir(tmp_path)
    code = main([
        "run", "conscale", "--scale", "150", "--duration", "60",
        "--trace", "dual_phase", "--profile",
    ])
    assert code == 0
    dumps = list((tmp_path / "results").glob("profile_*.pstats"))
    assert len(dumps) == 1
    stats = pstats.Stats(str(dumps[0]))
    assert stats.total_calls > 0
    assert "dump written to" in capsys.readouterr().err
