"""Tests for the fluid-equivalence harness and the flow-model wiring."""

import numpy as np
import pytest

import repro.experiments.fluid_equiv as equiv_mod
from repro.errors import ConfigurationError, FluidDivergenceError
from repro.experiments.artifact import RunSpec
from repro.experiments.fluid_equiv import (
    FluidCheckReport,
    _mode_accounting,
    default_fluid_specs,
    run_fluid_check,
    run_fluid_suite,
    steady_trace_csv,
)
from repro.experiments.racecheck import run_race_check
from repro.experiments.runner import execute_spec
from repro.experiments.scenarios import ScenarioConfig


def _steady_spec(duration: float = 120.0, **overrides) -> RunSpec:
    config = ScenarioConfig(
        name="fluidequiv-steady-test",
        trace_name=steady_trace_csv(users=4000.0, duration=duration),
        load_scale=300.0, duration=duration, seed=11,
        topology=(1, 2, 2), mode="hybrid",
    )
    if overrides:
        config = config.with_(**overrides)
    return RunSpec(framework="conscale", config=config)


# ----------------------------------------------------------------------
# scenario-config surface (mode / arrivals / demand distribution)
# ----------------------------------------------------------------------

def test_new_fields_validated():
    with pytest.raises(ConfigurationError):
        ScenarioConfig(name="x", trace_name="dual_phase", mode="analytic")
    with pytest.raises(ConfigurationError):
        ScenarioConfig(name="x", trace_name="dual_phase", arrivals="batch")
    with pytest.raises(ConfigurationError):
        ScenarioConfig(
            name="x", trace_name="dual_phase", demand_distribution="pareto"
        )
    with pytest.raises(ConfigurationError, match="open arrivals"):
        ScenarioConfig(
            name="x", trace_name="dual_phase", mode="hybrid", arrivals="closed"
        )


def test_explicit_defaults_keep_spec_digest():
    """mode/arrivals/distribution defaults must not perturb existing
    spec digests — the cache and the byte-identity contract depend on
    the default configuration hashing exactly as before."""
    base = ScenarioConfig(name="d", trace_name="dual_phase", seed=3)
    explicit = base.with_(
        mode="discrete", arrivals="open", demand_distribution="gamma"
    )
    assert RunSpec("conscale", base).digest() == RunSpec(
        "conscale", explicit
    ).digest()


def test_each_new_field_changes_spec_digest():
    base = ScenarioConfig(name="d", trace_name="dual_phase", seed=3)
    digests = {
        RunSpec("conscale", base).digest(),
        RunSpec("conscale", base.with_(mode="hybrid")).digest(),
        RunSpec("conscale", base.with_(mode="fluid")).digest(),
        RunSpec("conscale", base.with_(arrivals="closed")).digest(),
        RunSpec(
            "conscale", base.with_(demand_distribution="lognormal")
        ).digest(),
    }
    assert len(digests) == 5


# ----------------------------------------------------------------------
# the equivalence check
# ----------------------------------------------------------------------

def test_check_rejects_discrete_spec():
    with pytest.raises(ConfigurationError, match="mode='discrete'"):
        run_fluid_check(_steady_spec(duration=30.0, mode="discrete"))


def test_steady_hybrid_check_passes():
    spec = _steady_spec()
    report = run_fluid_check(spec)
    assert isinstance(report, FluidCheckReport)
    assert report.spec_digest == spec.digest()
    assert report.fluid_entries >= 1
    assert report.completed[0] > 0 and report.completed[1] > 0
    assert set(report.percentiles) == {50, 95, 99}
    assert report.describe().startswith("fluid equivalence ok")


def test_vacuous_hybrid_run_raises(tmp_path):
    """A hybrid run whose governor never leaves discrete mode must not
    pass silently when fluid coverage was required."""
    from repro.workload.trace import Trace

    # A sawtooth swinging 100 <-> 500 every 10 s: every 15 s inspection
    # window sees most of the swing, so the governor never goes fluid.
    saw = str(tmp_path / "saw.csv")
    knots = [0.0, 10.0, 20.0, 30.0]
    Trace("saw", knots, [2000.0, 8000.0, 2000.0, 8000.0]).to_csv(saw)
    spec = _steady_spec(duration=30.0, trace_name=saw)
    with pytest.raises(FluidDivergenceError, match="never entered"):
        run_fluid_check(spec, require_fluid=True)


def test_throughput_divergence_raises(monkeypatch):
    real_execute = equiv_mod.execute_spec

    def skewed(spec):
        result = real_execute(spec)
        if spec.config.mode != "discrete":
            result.completed = int(result.completed * 0.8)
        return result

    monkeypatch.setattr(equiv_mod, "execute_spec", skewed)
    with pytest.raises(FluidDivergenceError, match="throughput divergence"):
        run_fluid_check(_steady_spec())


def test_latency_divergence_raises(monkeypatch):
    real_execute = equiv_mod.execute_spec

    def skewed(spec):
        result = real_execute(spec)
        if spec.config.mode != "discrete":
            result.latencies = result.latencies * 3.0
        return result

    monkeypatch.setattr(equiv_mod, "execute_spec", skewed)
    with pytest.raises(FluidDivergenceError, match="latency divergence"):
        run_fluid_check(_steady_spec())


def test_default_specs_cover_three_storylines():
    specs = default_fluid_specs(duration=60.0)
    assert len(specs) == 3
    names = [s.config.name for s in specs]
    assert names == [
        "fluidequiv-steady", "fluidequiv-burst", "fluidequiv-faulted"
    ]
    assert all(s.config.mode == "hybrid" for s in specs)
    faulted = specs[-1]
    assert faulted.faults is not None and len(faulted.faults.specs) == 1
    # Two app replicas so the mid-run crash leaves the tier routable.
    assert faulted.config.topology == (1, 2, 2)


def test_suite_runs_explicit_spec_list():
    reports = run_fluid_suite([_steady_spec()])
    assert len(reports) == 1 and reports[0].fluid_entries >= 1


# ----------------------------------------------------------------------
# telemetry continuity + determinism across mode switches
# ----------------------------------------------------------------------

def test_warehouse_telemetry_continuous_across_switches():
    """Fine-grained interval series must show no gaps or double-counts
    across discrete/fluid transitions: uniform sample spacing, and the
    web tier's interval completions summing to the run's total."""
    artifact = execute_spec(_steady_spec())
    entered, _ = _mode_accounting(artifact)
    assert entered >= 1  # the run actually switched modes
    for series in artifact.fine_series.values():
        spacing = np.diff(series.t_end)
        assert spacing.size > 0
        assert np.allclose(spacing, spacing[0])
    web_completions = sum(
        int(s.completions.sum())
        for s in artifact.fine_series.values()
        if s.tier == "web"
    )
    assert web_completions == artifact.completed


def test_race_check_clean_on_hybrid_run():
    """Mode switching must not introduce tie-order races: all observable
    surfaces identical under permuted same-timestamp execution."""
    report = run_race_check(_steady_spec(duration=60.0))
    assert report.events_executed > 0


# ----------------------------------------------------------------------
# pinned modes through the runner
# ----------------------------------------------------------------------

def test_fluid_mode_end_to_end():
    artifact = execute_spec(_steady_spec(duration=60.0, mode="fluid"))
    assert artifact.completed > 0
    assert artifact.generated >= artifact.completed
    entered, _ = _mode_accounting(artifact)
    assert entered == 0  # pinned fluid: no governor, no mode events


def test_closed_arrivals_end_to_end():
    config = ScenarioConfig(
        name="closed-arrivals-test", trace_name="dual_phase",
        load_scale=300.0, duration=30.0, seed=5, arrivals="closed",
    )
    artifact = execute_spec(RunSpec(framework="conscale", config=config))
    assert artifact.completed > 0
    assert artifact.generated >= artifact.completed


def test_closed_fluid_end_to_end():
    spec = _steady_spec(duration=60.0, mode="fluid", arrivals="closed")
    artifact = execute_spec(spec)
    assert artifact.completed > 0
