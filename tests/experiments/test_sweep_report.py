"""Tests for the sweep harness and the text/CSV reporting."""

import os

import pytest

from repro.errors import ExperimentError
from repro.experiments.calibration import ample_capacity, db_capacity_cpu
from repro.experiments.report import ascii_chart, format_table, write_csv
from repro.experiments.sweep import concurrency_sweep, find_q_lower
from repro.workload.mixes import browse_only_mix

BASE = {"web": (0.0003, 0.1), "app": (0.002, 0.2), "db": (0.010, 0.3)}


# ----------------------------------------------------------------------
# find_q_lower
# ----------------------------------------------------------------------

def test_find_q_lower_basic():
    levels = [2, 5, 10, 20, 40]
    tps = [20.0, 50.0, 100.0, 99.0, 60.0]
    assert find_q_lower(levels, tps, tolerance=0.05) == 10


def test_find_q_lower_ignores_order():
    assert find_q_lower([40, 10, 2], [60.0, 100.0, 20.0]) == 10


def test_find_q_lower_validation():
    with pytest.raises(ExperimentError):
        find_q_lower([], [])
    with pytest.raises(ExperimentError):
        find_q_lower([1, 2], [1.0])


# ----------------------------------------------------------------------
# concurrency sweep (small but real)
# ----------------------------------------------------------------------

def test_sweep_reproduces_mysql_knee():
    mix = browse_only_mix(BASE)
    caps = {"web": ample_capacity(), "app": ample_capacity(),
            "db": db_capacity_cpu(1.0)}
    res = concurrency_sweep(
        "db", caps, mix, [2, 5, 8, 10, 12, 16, 24, 40], duration=12.0
    )
    assert res.q_lower() in (8, 10, 12)
    # pinned concurrency: the measurement must match the cap closely
    for p in res.points:
        assert p.measured_concurrency == pytest.approx(p.concurrency, rel=0.15)
    # RT grows monotonically-ish past the knee
    rts = [p.response_time for p in res.points]
    assert rts[-1] > 2.0 * rts[0]


def test_sweep_validation():
    mix = browse_only_mix(BASE)
    caps = {"web": ample_capacity(), "app": ample_capacity(),
            "db": db_capacity_cpu(1.0)}
    with pytest.raises(ExperimentError):
        concurrency_sweep("cache", caps, mix, [2])
    with pytest.raises(ExperimentError):
        concurrency_sweep("db", caps, mix, [])


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------

def test_format_table_alignment():
    text = format_table(["a", "bbbb"], [[1, 2.5], [10, 300.123]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "bbbb" in lines[0]
    assert "300" in lines[-1]


def test_format_table_nan_dash():
    text = format_table(["x"], [[float("nan")]])
    assert "-" in text.splitlines()[-1]


def test_ascii_chart_renders():
    chart = ascii_chart([0, 1, 2, 3], [0.0, 1.0, 4.0, 9.0], width=20, height=6,
                        label="demo")
    assert "demo" in chart
    assert "*" in chart


def test_ascii_chart_handles_insufficient_data():
    assert "not enough" in ascii_chart([1], [1.0])


def test_write_csv(tmp_path):
    path = write_csv(str(tmp_path / "sub" / "t.csv"), ["a", "b"], [[1, 2], [3, 4]])
    assert os.path.exists(path)
    content = open(path).read().strip().splitlines()
    assert content[0] == "a,b"
    assert content[2] == "3,4"
