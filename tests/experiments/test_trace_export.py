"""``repro trace export --jsonl``: the episode dump must round-trip.

The JSONL export is the training-data path out of the simulator: a
meta header pinning the producing spec, then one line per
:class:`~repro.control.events.DecisionEvent`. These tests parse the
dump back into a :class:`~repro.control.trace.DecisionTrace` and
require it equal to the artifact's trace, on a storylined run — the
richest event mix (faults, recovery actions, policy holds) the control
plane produces.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.control.events import DecisionEvent
from repro.control.trace import DecisionTrace
from repro.experiments.artifact import SCHEMA_VERSION
from repro.experiments.persistence import trace_jsonl
from repro.experiments.resilience import storyline_suite
from repro.experiments.runner import execute_spec


def storylined_spec():
    """The recovery-aware az-outage spec at test_engine's reduced scale."""
    specs = storyline_suite(
        load_scale=300.0, duration=60.0, seed=2,
        frameworks=("conscale",), trace_name="dual_phase",
        storylines=("az-outage",),
    )
    aware = [
        s for s in specs
        if s.faults is not None
        and s.overrides.controller_params in (None, ())
    ]
    assert len(aware) == 1, [s.label for s in specs]
    return aware[0]


@pytest.fixture(scope="module")
def artifact():
    return execute_spec(storylined_spec())


def parse_jsonl(lines: list[str]) -> tuple[dict, DecisionTrace]:
    header = json.loads(lines[0])
    events = [
        DecisionEvent(
            time=record["t"], kind=record["kind"], tier=record["tier"],
            value=record["value"], detail=record["detail"],
            source=record["source"], reason=record["reason"],
            estimate=record["estimate"],
        )
        for record in map(json.loads, lines[1:])
    ]
    return header, DecisionTrace(events)


def test_header_pins_the_producing_spec(artifact):
    header, _ = parse_jsonl(trace_jsonl(artifact))
    spec = artifact.spec
    assert header["format"] == "repro-trace"
    assert header["version"] == 1
    assert header["schema"] == SCHEMA_VERSION
    assert header["spec_digest"] == spec.digest()
    assert header["framework"] == "conscale"
    assert header["storyline"] == spec.faults.storyline
    assert header["faults"] == spec.faults.describe()
    assert header["events"] == len(artifact.actions.all())


def test_event_lines_round_trip_into_an_equal_trace(artifact):
    lines = trace_jsonl(artifact)
    _, rebuilt = parse_jsonl(lines)
    original = artifact.actions.all()
    assert len(lines) - 1 == len(original)
    assert rebuilt.all() == original
    # The storylined run actually exercised the interesting kinds: the
    # round-trip must carry fault-recovery events, not just no-ops.
    kinds = {event.kind for event in rebuilt.all()}
    assert "scalein_suspended" in kinds, sorted(kinds)


def test_cli_jsonl_export_is_deterministic_and_cache_served(
    tmp_path, monkeypatch, capsys
):
    monkeypatch.chdir(tmp_path)
    argv = [
        "trace", "export", "conscale",
        "--trace", "dual_phase", "--scale", "300",
        "--duration", "60", "--seed", "2",
        "--topology", "1,2,2", "--storyline", "az-outage",
        "--jsonl",
    ]
    out_a = tmp_path / "episodes" / "first.jsonl"
    out_b = tmp_path / "episodes" / "second.jsonl"
    assert main([*argv, "--out", str(out_a)]) == 0
    captured = capsys.readouterr()
    assert "events written to" in captured.err
    # Second export is served from the run cache and must be
    # byte-identical — the digest in the header is the cache key.
    assert main([*argv, "--out", str(out_b)]) == 0
    capsys.readouterr()
    assert out_a.read_bytes() == out_b.read_bytes()
    lines = out_a.read_text().splitlines()
    header, rebuilt = parse_jsonl(lines)
    assert header["format"] == "repro-trace"
    assert header["schema"] == SCHEMA_VERSION
    assert header["storyline"] == "az-outage"
    assert header["events"] == len(lines) - 1 == len(rebuilt.all())
    kinds = {event.kind for event in rebuilt.all()}
    assert "scalein_suspended" in kinds, sorted(kinds)
