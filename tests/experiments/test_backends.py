"""Execution-backend contracts: bit-identical artifacts on every
backend, lease requeue after a worker crash, per-task retry caps, and
the CLI surface (``--backend``, ``repro worker``).

File-queue tests drive the coordinator and an in-process worker on
separate threads against a tmp queue directory; one test exercises the
real ``repro worker`` subprocess. All simulation runs use the reduced
scale from ``test_engine`` (load_scale 300, 60 s).
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import (
    BackendError,
    ConfigurationError,
    ExperimentError,
    RetryExhaustedError,
)
from repro.experiments.artifact import RunSpec
from repro.experiments.backends import (
    BackendTask,
    FileQueueBackend,
    FileQueueWorker,
    ProcessBackend,
    SerialBackend,
    callable_ref,
    make_backend,
    resolve_callable,
)
from repro.experiments.engine import ExperimentEngine, ResultCache
from tests.experiments.test_engine import small_config


# ----------------------------------------------------------------------
# module-level task functions (must be importable by reference)
# ----------------------------------------------------------------------

def _double(x: int) -> int:
    return 2 * x


def _sleep_for(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def _raise_for_two(n: int) -> int:
    if n == 2:
        raise ExperimentError("boom")
    return n


def _always_boom(_payload) -> None:
    raise ValueError("deterministic failure")


def _flaky(marker_path: str) -> str:
    """Fails on the first attempt, succeeds once the marker exists."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w"):
            pass
        raise ValueError("transient failure on first attempt")
    return "ok"


def _drain(queue_dir: str, **kwargs) -> FileQueueWorker:
    """Start an in-process worker thread; returns the worker (joinable
    via its ``thread`` attribute)."""
    worker = FileQueueWorker(queue_dir, poll=0.02, heartbeat=0.05)
    thread = threading.Thread(
        target=worker.run, kwargs=kwargs, daemon=True
    )
    worker.thread = thread
    thread.start()
    return worker


# ----------------------------------------------------------------------
# callable references
# ----------------------------------------------------------------------

def test_callable_ref_roundtrip():
    ref = callable_ref(_double)
    assert ref == f"{__name__}:_double"
    assert resolve_callable(ref) is _double


def test_callable_ref_rejects_locals_and_lambdas():
    def nested(x):
        return x

    with pytest.raises(BackendError):
        callable_ref(nested)
    with pytest.raises(BackendError):
        callable_ref(lambda x: x)


def test_resolve_rejects_garbage():
    with pytest.raises(BackendError):
        resolve_callable("no-colon")
    with pytest.raises(BackendError):
        resolve_callable("nonexistent.module:fn")
    with pytest.raises(BackendError):
        resolve_callable(f"{__name__}:not_there")


def test_make_backend_names(tmp_path):
    assert isinstance(make_backend("serial"), SerialBackend)
    assert isinstance(make_backend("process", jobs=3), ProcessBackend)
    fq = make_backend("file-queue", queue_dir=str(tmp_path / "q"))
    assert isinstance(fq, FileQueueBackend)
    with pytest.raises(ConfigurationError):
        make_backend("file-queue")  # needs a queue dir
    with pytest.raises(ConfigurationError):
        make_backend("slurm")


# ----------------------------------------------------------------------
# determinism: the same spec is bit-identical on all three backends
# ----------------------------------------------------------------------

def test_bit_identical_artifacts_across_backends(tmp_path):
    spec = RunSpec("conscale", small_config())
    filler = RunSpec("ec2", small_config())  # forces a real pool

    serial = ExperimentEngine(use_cache=False).run(spec)
    process = ExperimentEngine(jobs=2, use_cache=False).run_many(
        [spec, filler]
    )[0]

    queue_dir = str(tmp_path / "q")
    cache_dir = str(tmp_path / "cache")
    worker = _drain(queue_dir, max_tasks=1)
    fq_engine = ExperimentEngine(
        cache_dir=cache_dir,
        backend=FileQueueBackend(queue_dir, cache_dir=cache_dir, poll=0.02),
    )
    file_queue = fq_engine.run(spec)
    worker.thread.join(timeout=30)

    assert serial.signature() == process.signature()
    assert serial.signature() == file_queue.signature()
    # the worker published through the shared cache: a fresh engine on
    # "another host" gets a pure hit
    other_host = ExperimentEngine(cache_dir=cache_dir, require_cached=True)
    assert other_host.run(spec).signature() == serial.signature()
    assert other_host.stats.hits == 1 and other_host.executed == 0


def test_filequeue_runs_generic_tasks(tmp_path):
    queue_dir = str(tmp_path / "q")
    worker = _drain(queue_dir, max_tasks=4)
    engine = ExperimentEngine(
        use_cache=False, backend=FileQueueBackend(queue_dir, poll=0.02)
    )
    assert engine.run_tasks(_double, [1, 2, 3, 4]) == [2, 4, 6, 8]
    worker.thread.join(timeout=10)
    assert worker.processed == 4
    assert engine.executed == 4


# ----------------------------------------------------------------------
# worker crash: lease expiry requeues, the grid still completes
# ----------------------------------------------------------------------

def test_killed_worker_lease_is_requeued_and_grid_completes(tmp_path):
    queue_dir = tmp_path / "q"
    backend = FileQueueBackend(
        str(queue_dir), poll=0.02, lease_timeout=0.3, heartbeat=0.05
    )
    tasks = [BackendTask(i, i, None, f"t{i}") for i in range(3)]
    completions: list = []
    failure: list = []
    finished = threading.Event()

    def coordinate():
        try:
            completions.extend(backend.run(_double, tasks))
        except BaseException as exc:  # surfaced via the assert below
            failure.append(exc)
        finally:
            finished.set()

    threading.Thread(target=coordinate, daemon=True).start()

    # A "worker" claims one task and dies: lease rename happened, but
    # no heartbeat and no result will ever follow.
    pending = queue_dir / "pending"
    leased = queue_dir / "leased"
    victim = None
    deadline = time.monotonic() + 10
    while victim is None and time.monotonic() < deadline:
        for name in sorted(os.listdir(pending)) if pending.exists() else []:
            if name.endswith(".task"):
                try:
                    os.rename(pending / name, leased / name)
                except OSError:
                    continue
                victim = name
                break
        time.sleep(0.01)
    assert victim is not None, "no task ever appeared in pending/"

    # A live worker drains the rest — including the victim once the
    # coordinator expires its lease.
    worker = _drain(str(queue_dir), max_tasks=3)
    assert finished.wait(timeout=30), "grid did not complete"
    worker.thread.join(timeout=10)
    assert not failure
    assert sorted(c.task.index for c in completions) == [0, 1, 2]
    assert {c.task.index: c.result for c in completions} == {0: 0, 1: 2, 2: 4}
    assert backend.lease_requeues >= 1


# ----------------------------------------------------------------------
# retries: transient failures absorbed, deterministic ones capped
# ----------------------------------------------------------------------

def test_flaky_task_retried_to_success(tmp_path):
    queue_dir = str(tmp_path / "q")
    worker = _drain(queue_dir, max_tasks=2)  # failing attempt + retry
    engine = ExperimentEngine(
        use_cache=False,
        backend=FileQueueBackend(queue_dir, poll=0.02, max_attempts=2),
    )
    marker = str(tmp_path / "attempted")
    assert engine.run_tasks(_flaky, [marker], labels=["flaky"]) == ["ok"]
    worker.thread.join(timeout=10)
    assert engine.backend.retries == 1
    assert worker.failures == 1


def test_retry_cap_surfaces_worker_traceback(tmp_path):
    queue_dir = str(tmp_path / "q")
    worker = _drain(queue_dir, max_tasks=2)
    engine = ExperimentEngine(
        use_cache=False,
        backend=FileQueueBackend(queue_dir, poll=0.02, max_attempts=2),
    )
    with pytest.raises(RetryExhaustedError) as excinfo:
        engine.run_tasks(_always_boom, [None], labels=["doomed"])
    worker.thread.join(timeout=10)
    message = str(excinfo.value)
    assert "'doomed'" in message and "2 attempt(s)" in message
    assert "deterministic failure" in message  # the worker's traceback


def test_process_backend_failure_carries_task_label(tmp_path):
    engine = ExperimentEngine(jobs=2, cache_dir=str(tmp_path))
    with pytest.raises(ExperimentError, match="boom") as excinfo:
        engine.run_tasks(_raise_for_two, [1, 2], labels=["one", "two"])
    notes = getattr(excinfo.value, "__notes__", [])
    assert any("'two'" in note and "process backend" in note for note in notes)


def test_serial_backend_failure_carries_task_label():
    engine = ExperimentEngine(use_cache=False)
    with pytest.raises(ExperimentError, match="boom") as excinfo:
        engine.run_tasks(_raise_for_two, [2], labels=["solo"])
    notes = getattr(excinfo.value, "__notes__", [])
    assert any("'solo'" in note and "serial backend" in note for note in notes)


# ----------------------------------------------------------------------
# satellite fixes: per-task timing, stable stats, key validation
# ----------------------------------------------------------------------

def test_done_event_seconds_are_per_task_not_pool_wide():
    """A fast task's `done` event must report its own execution time,
    not elapsed time since the pool started (which includes worker
    spawn and the slow task's runtime)."""
    events = []
    engine = ExperimentEngine(jobs=2, use_cache=False, progress=events.append)
    engine.run_tasks(_sleep_for, [0.5, 0.01], labels=["slow", "fast"])
    seconds = {e.label: e.seconds for e in events if e.kind == "done"}
    assert seconds["slow"] >= 0.5
    assert seconds["fast"] < 0.25


def test_stats_is_a_stable_instance_without_cache():
    engine = ExperimentEngine(use_cache=False)
    held = engine.stats
    assert engine.stats is held
    engine.run_tasks(_double, [1])
    assert engine.stats is held
    assert held.hits == held.misses == held.stores == 0


def test_cache_key_shape_validation(tmp_path):
    cache = ResultCache(str(tmp_path))
    for bad in (".", "..", "../escape", "a/b", "a\\b", "", "short",
                "DEADBEEFCAFE", "label with spaces", "x" * 65, 7):
        with pytest.raises(ConfigurationError):
            cache.path(bad)
    # digest-shaped keys pass: full SHA-256 and short hex test keys
    cache.store("deadbeef" * 8, {"v": 1})
    assert cache.load("deadbeef" * 8) == {"v": 1}
    assert cache.path("cafef00d").endswith("cafef00d.pkl")


# ----------------------------------------------------------------------
# CLI: --backend flag and the worker subcommand
# ----------------------------------------------------------------------

def test_cli_backend_serial(capsys, tmp_path, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    argv = [
        "table1", "--scale", "300", "--duration", "60", "--seed", "2",
        "--traces", "dual_phase", "--backend", "serial",
    ]
    assert main(argv) == 0
    assert "dual_phase" in capsys.readouterr().out


def test_cli_filequeue_requires_queue_dir(capsys):
    from repro.cli import main

    assert main([
        "table1", "--traces", "dual_phase", "--backend", "file-queue",
    ]) == 2
    assert "--queue-dir" in capsys.readouterr().err


def test_cli_filequeue_grid_with_worker_subprocess(capsys, tmp_path, monkeypatch):
    """End to end: coordinator CLI + one `repro worker` subprocess."""
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    queue_dir = str(tmp_path / "q")
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..", "src")
    )
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", queue_dir,
         "--max-tasks", "2", "--idle-exit", "60", "--poll", "0.05"],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        argv = [
            "table1", "--scale", "300", "--duration", "60", "--seed", "2",
            "--traces", "dual_phase", "--backend", "file-queue",
            "--queue-dir", queue_dir,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "dual_phase" in first
        assert "0 hit(s), 2 miss(es)" in first
        stderr = proc.communicate(timeout=60)[1]
        assert proc.returncode == 0
        assert "2 task(s) processed, 0 failure(s)" in stderr

        # second run: everything the workers published is cache-served
        assert main([
            "table1", "--scale", "300", "--duration", "60", "--seed", "2",
            "--traces", "dual_phase", "--cached-only",
        ]) == 0
        second = capsys.readouterr().out
        assert "2 hit(s), 0 miss(es)" in second
        assert [ln for ln in second.splitlines() if "dual_phase" in ln] == [
            ln for ln in first.splitlines() if "dual_phase" in ln
        ]
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
