"""Tests for the VM lifecycle and the hypervisor."""

import pytest

from repro.cloud.hypervisor import Hypervisor
from repro.cloud.vm import VM, VmState
from repro.errors import CloudError
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# VM state machine
# ----------------------------------------------------------------------

def test_lifecycle_happy_path():
    vm = VM("db-vm1", "db")
    assert vm.state is VmState.PROVISIONING
    vm.transition(VmState.RUNNING, now=15.0)
    assert vm.ready_at == 15.0
    vm.transition(VmState.DRAINING, now=100.0)
    vm.transition(VmState.STOPPED, now=110.0)
    assert vm.stopped_at == 110.0


def test_illegal_transitions():
    vm = VM("v", "db")
    with pytest.raises(CloudError):
        vm.transition(VmState.DRAINING, 0.0)  # provisioning -> draining
    vm.transition(VmState.RUNNING, 0.0)
    with pytest.raises(CloudError):
        vm.transition(VmState.PROVISIONING, 0.0)
    vm.transition(VmState.STOPPED, 1.0)
    with pytest.raises(CloudError):
        vm.transition(VmState.RUNNING, 2.0)


def test_billable():
    vm = VM("v", "db")
    assert vm.is_billable
    vm.transition(VmState.RUNNING, 0.0)
    assert vm.is_billable
    vm.transition(VmState.STOPPED, 1.0)
    assert not vm.is_billable


# ----------------------------------------------------------------------
# hypervisor
# ----------------------------------------------------------------------

def test_launch_takes_prep_period():
    sim = Simulator()
    hv = Hypervisor(sim, prep_period=15.0)
    ready = []
    vm = hv.launch("db", ready.append)
    assert vm.state is VmState.PROVISIONING
    sim.run(until=14.0)
    assert ready == []
    sim.run(until=16.0)
    assert ready == [vm]
    assert vm.state is VmState.RUNNING
    assert vm.ready_at == pytest.approx(15.0)


def test_launch_prep_override():
    sim = Simulator()
    hv = Hypervisor(sim, prep_period=15.0)
    ready = []
    hv.launch("db", ready.append, prep_period=2.0)
    sim.run(until=3.0)
    assert len(ready) == 1


def test_stop_aborts_provisioning():
    sim = Simulator()
    hv = Hypervisor(sim, prep_period=15.0)
    ready = []
    vm = hv.launch("db", ready.append)
    sim.run(until=5.0)
    hv.stop(vm)
    sim.run()
    assert ready == []
    assert vm.state is VmState.STOPPED


def test_counts():
    sim = Simulator()
    hv = Hypervisor(sim, prep_period=10.0)
    vms = [hv.launch("db", lambda v: None) for _ in range(3)]
    hv.launch("app", lambda v: None)
    assert hv.billable_count() == 4
    assert hv.billable_count("db") == 3
    assert hv.provisioning_count("db") == 3
    sim.run(until=11.0)
    assert hv.provisioning_count("db") == 0
    hv.stop(vms[0].__class__ and vms[0])
    assert hv.billable_count("db") == 2


def test_vm_names_unique_and_lookup():
    sim = Simulator()
    hv = Hypervisor(sim)
    a = hv.launch("db", lambda v: None)
    b = hv.launch("db", lambda v: None)
    assert a.name != b.name
    assert hv.vm(a.name) is a
    with pytest.raises(CloudError):
        hv.vm("ghost")


def test_negative_prep_rejected():
    with pytest.raises(CloudError):
        Hypervisor(Simulator(), prep_period=-1.0)
