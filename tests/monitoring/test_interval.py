"""Tests for fine-grained interval monitoring."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.monitoring.interval import IntervalMonitor
from repro.ntier.request import Request
from repro.ntier.server import Server, ServerConfig
from repro.sim.engine import Simulator

from tests.conftest import simple_capacity


def make_server(sim, a_sat=10.0):
    return Server(sim, ServerConfig("db-1", "db", simple_capacity(a_sat), 1000))


def flow(server, demand):
    def _start(r):
        server.work(r, demand, lambda x: server.release(x))
    return _start


def test_invalid_interval():
    sim = Simulator()
    server = make_server(sim)
    with pytest.raises(ConfigurationError):
        IntervalMonitor(sim, server, interval=0.0)


def test_idle_intervals_report_zero():
    sim = Simulator()
    server = make_server(sim)
    mon = IntervalMonitor(sim, server, interval=0.1)
    sim.run(until=0.35)
    assert len(mon.samples) == 3
    for s in mon.samples:
        assert s.concurrency == 0.0
        assert s.throughput == 0.0
        assert math.isnan(s.response_time)
        assert not s.has_completions


def test_throughput_counts_completions_per_interval():
    sim = Simulator()
    server = make_server(sim)
    mon = IntervalMonitor(sim, server, interval=0.1)
    # 5 sequential-ish jobs of 10ms each, all inside the first interval
    for i in range(5):
        sim.schedule(i * 0.011, server.admit,
                     Request(i, "X", 0.0, {"db": 0.01}), flow(server, 0.01))
    sim.run(until=0.25)
    first = mon.samples[0]
    assert first.completions == 5
    assert first.throughput == pytest.approx(50.0)
    assert first.response_time == pytest.approx(0.01, rel=0.05)


def test_concurrency_is_time_weighted():
    sim = Simulator()
    server = make_server(sim)
    mon = IntervalMonitor(sim, server, interval=0.1)
    # one request occupying the server for exactly half the interval
    sim.schedule(0.0, server.admit, Request(0, "X", 0.0, {"db": 1.0}),
                 flow(server, 0.05))
    sim.run(until=0.15)
    assert mon.samples[0].concurrency == pytest.approx(0.5)


def test_utilization_reported():
    sim = Simulator()
    server = make_server(sim, a_sat=10)
    mon = IntervalMonitor(sim, server, interval=0.1)
    sim.schedule(0.0, server.admit, Request(0, "X", 0.0, {"db": 1.0}),
                 flow(server, 0.1))
    sim.run(until=0.12)
    # one active request on a_sat=10 -> util 0.1 for the whole interval
    assert mon.samples[0].utilization["cpu"] == pytest.approx(0.1)


def test_history_bound():
    sim = Simulator()
    server = make_server(sim)
    mon = IntervalMonitor(sim, server, interval=0.1, history=5)
    sim.run(until=2.0)
    assert len(mon.samples) == 5


def test_recent_window():
    sim = Simulator()
    server = make_server(sim)
    mon = IntervalMonitor(sim, server, interval=0.1)
    sim.run(until=1.05)
    recent = mon.recent(0.35)
    assert len(recent) == 3
    assert all(s.t_end >= 0.7 for s in recent)


def test_stop_halts_sampling():
    sim = Simulator()
    server = make_server(sim)
    mon = IntervalMonitor(sim, server, interval=0.1)
    sim.schedule(0.25, mon.stop)
    sim.run(until=1.0)
    assert len(mon.samples) == 2
