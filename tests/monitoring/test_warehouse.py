"""Tests for the metric warehouse."""

import pytest

from repro.errors import MonitoringError
from repro.monitoring.warehouse import MetricWarehouse
from repro.ntier.request import Request
from repro.ntier.server import Server, ServerConfig
from repro.sim.engine import Simulator

from tests.conftest import simple_capacity


def make_server(sim, name="db-1", tier="db", a_sat=10.0):
    return Server(sim, ServerConfig(name, tier, simple_capacity(a_sat), 1000))


def busy_flow(server, demand):
    def _start(r):
        server.work(r, demand, lambda x: server.release(x))
    return _start


def test_register_and_deregister():
    sim = Simulator()
    wh = MetricWarehouse(sim)
    server = make_server(sim)
    wh.register_server(server)
    assert wh.monitored_servers == ["db-1"]
    with pytest.raises(MonitoringError):
        wh.register_server(server)
    wh.deregister_server("db-1")
    assert wh.monitored_servers == []
    with pytest.raises(MonitoringError):
        wh.deregister_server("db-1")


def test_vm_samples_collected_each_tick():
    sim = Simulator()
    wh = MetricWarehouse(sim, tick=1.0)
    wh.register_server(make_server(sim))
    sim.run(until=3.5)
    samples = wh.samples(window=10.0)
    assert len(samples) == 3
    assert {s.server for s in samples} == {"db-1"}


def test_tier_cpu_reflects_load():
    sim = Simulator()
    wh = MetricWarehouse(sim, tick=1.0)
    server = make_server(sim, a_sat=10)
    wh.register_server(server)
    # Keep 5 requests active for the whole window -> util 0.5.
    for i in range(5):
        server.admit(Request(i, "X", 0.0, {"db": 1.0}), busy_flow(server, 100.0))
    sim.run(until=4.0)
    assert wh.tier_cpu("db", window=3.0) == pytest.approx(0.5, abs=0.02)


def test_tier_cpu_no_samples_is_zero():
    sim = Simulator()
    wh = MetricWarehouse(sim)
    assert wh.tier_cpu("db") == 0.0


def test_fine_samples_per_server():
    sim = Simulator()
    wh = MetricWarehouse(sim, tick=1.0, fine_interval=0.1)
    wh.register_server(make_server(sim))
    sim.run(until=1.0)
    fine = wh.fine_samples("db-1", window=0.45)
    assert len(fine) == 5
    with pytest.raises(MonitoringError):
        wh.fine_samples("ghost", window=1.0)


def test_fine_samples_for_tier_grouping():
    sim = Simulator()
    wh = MetricWarehouse(sim, fine_interval=0.1)
    wh.register_server(make_server(sim, "db-1", "db"))
    wh.register_server(make_server(sim, "db-2", "db"))
    wh.register_server(make_server(sim, "app-1", "app"))
    sim.run(until=0.5)
    by_server = wh.fine_samples_for_tier("db", window=1.0)
    assert set(by_server) == {"db-1", "db-2"}


def test_history_trimming():
    sim = Simulator()
    wh = MetricWarehouse(sim, tick=1.0, history_seconds=5.0)
    wh.register_server(make_server(sim))
    sim.run(until=20.0)
    samples = wh.samples(window=100.0)
    assert all(s.t_end >= 15.0 for s in samples)


def test_late_registered_server_monitored_from_join():
    sim = Simulator()
    wh = MetricWarehouse(sim, tick=1.0, fine_interval=0.5)
    server = make_server(sim)
    sim.schedule(5.0, wh.register_server, server)
    sim.run(until=8.0)
    fine = wh.fine_samples("db-1", window=100.0)
    assert fine and all(s.t_end > 5.0 for s in fine)


def test_register_sampler_ticks_on_warehouse_cadence():
    sim = Simulator()
    wh = MetricWarehouse(sim, tick=1.0)
    seen = []
    proc = wh.register_sampler(seen.append)
    sim.run(until=3.5)
    assert seen == [1.0, 2.0, 3.0]
    proc.stop()
    sim.run(until=6.0)
    assert seen == [1.0, 2.0, 3.0]


def test_register_sampler_observes_settled_tick():
    """A sampler registered through the warehouse sees the warehouse's
    own collection for the same instant already applied."""
    sim = Simulator()
    wh = MetricWarehouse(sim, tick=1.0)
    wh.register_server(make_server(sim))
    counts = []
    wh.register_sampler(lambda now: counts.append(len(wh.samples(window=now + 1.0))))
    sim.run(until=3.0)
    assert counts == [1, 2, 3]


def test_primary_resource_rename_raises():
    """Differencing busy integrals across a renamed primary resource
    would fabricate rates; the collector must refuse instead."""
    from repro.ntier.capacity import CapacityModel, ContentionModel, Resource

    sim = Simulator()
    wh = MetricWarehouse(sim, tick=1.0)
    server = make_server(sim)
    wh.register_server(server)
    sim.run(until=1.0)
    server.set_capacity(
        CapacityModel([Resource("gpu", 1.0, 0.1)], ContentionModel(0.0, 0.0))
    )
    with pytest.raises(MonitoringError, match="primary resource"):
        sim.run(until=2.0)


def test_vectorised_collection_matches_across_calendars():
    """The numpy collection pass is calendar-independent."""
    outputs = {}
    for calendar in ("wheel", "heap"):
        sim = Simulator(calendar=calendar)
        wh = MetricWarehouse(sim, tick=1.0, fine_interval=0.25)
        servers = [make_server(sim, f"db-{i}", "db") for i in range(3)]
        for s in servers:
            wh.register_server(s)
        for i in range(30):
            sim.schedule(
                i * 0.1,
                servers[i % 3].admit,
                Request(i, "X", 0.0, {"db": 0.2}),
                busy_flow(servers[i % 3], 0.2),
            )
        sim.run(until=5.0)
        outputs[calendar] = [
            (s.t_end, s.server, s.cpu, s.concurrency, s.throughput)
            for s in wh.samples(window=10.0)
        ]
    assert outputs["wheel"] == outputs["heap"]
