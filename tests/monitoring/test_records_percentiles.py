"""Tests for request logs, timelines, and tail-latency helpers."""

import math

import numpy as np
import pytest

from repro.errors import MonitoringError
from repro.monitoring.percentiles import percentile, tail_summary
from repro.monitoring.records import RequestLog
from repro.ntier.request import Request


def completed_request(req_id, arrival, completion):
    req = Request(req_id, "X", arrival, {})
    req.completion = completion
    return req


def test_record_requires_completion():
    log = RequestLog()
    with pytest.raises(MonitoringError):
        log.record(Request(0, "X", 0.0, {}))


def test_record_and_arrays():
    log = RequestLog()
    log.record(completed_request(0, 0.0, 0.5))
    log.record(completed_request(1, 1.0, 1.2))
    assert len(log) == 2
    assert list(log.response_times) == pytest.approx([0.5, 0.2])
    assert list(log.completion_times) == [0.5, 1.2]
    assert list(log.arrival_times) == [0.0, 1.0]


def test_percentile_with_warmup_cutoff():
    log = RequestLog()
    log.record(completed_request(0, 0.0, 10.0))  # rt 10, completes at 10
    for i in range(1, 11):
        log.record(completed_request(i, 20.0, 20.0 + 0.1 * i))
    # including warm-up, p99 is dominated by the 10 s outlier
    assert log.percentile(99) > 5.0
    # excluding it, all latencies <= 1.0
    assert log.percentile(99, after=15.0) <= 1.0


def test_percentile_empty_window_raises():
    log = RequestLog()
    with pytest.raises(MonitoringError):
        log.percentile(95)
    log.record(completed_request(0, 0.0, 1.0))
    with pytest.raises(MonitoringError):
        log.percentile(95, after=100.0)


def test_timeline_bins():
    log = RequestLog()
    for i in range(10):
        log.record(completed_request(i, 0.0, 0.5 + i))  # completes 0.5..9.5
    bins = log.timeline(bin_width=5.0, duration=10.0)
    assert len(bins) == 2
    assert bins[0].completions == 5
    assert bins[0].throughput == pytest.approx(1.0)
    assert bins[1].completions == 5


def test_timeline_empty_bins_are_nan():
    log = RequestLog()
    log.record(completed_request(0, 0.0, 0.5))
    bins = log.timeline(bin_width=1.0, duration=3.0)
    assert bins[0].completions == 1
    assert math.isnan(bins[1].mean_rt)
    assert bins[1].throughput == 0.0


def test_timeline_validation():
    with pytest.raises(MonitoringError):
        RequestLog().timeline(bin_width=0.0)


# ----------------------------------------------------------------------
# percentiles helpers
# ----------------------------------------------------------------------

def test_percentile_helper():
    assert percentile([1, 2, 3, 4, 5], 50) == 3.0
    with pytest.raises(MonitoringError):
        percentile([], 50)
    with pytest.raises(MonitoringError):
        percentile([1.0], 150)


def test_tail_summary_fields():
    values = np.arange(1, 101, dtype=float)  # 1..100
    t = tail_summary(values)
    assert t.count == 100
    assert t.mean == pytest.approx(50.5)
    assert t.p50 == pytest.approx(50.5)
    assert t.p95 == pytest.approx(95.05)
    assert t.p99 == pytest.approx(99.01)
    assert t.max == 100.0


def test_tail_summary_empty_raises():
    with pytest.raises(MonitoringError):
        tail_summary([])


def test_tail_summary_ordering_invariant():
    rng = np.random.default_rng(0)
    t = tail_summary(rng.exponential(1.0, 500))
    assert t.p50 <= t.p95 <= t.p99 <= t.max


def test_by_interaction_groups_latencies():
    log = RequestLog()
    for i, (name, rt) in enumerate(
        [("ViewStory", 0.1), ("ViewStory", 0.2), ("SearchInStories", 0.9)]
    ):
        req = Request(i, name, 0.0, {})
        req.completion = rt
        log.record(req)
    groups = log.by_interaction()
    assert set(groups) == {"ViewStory", "SearchInStories"}
    assert list(groups["ViewStory"]) == pytest.approx([0.1, 0.2])
    assert list(groups["SearchInStories"]) == pytest.approx([0.9])


def test_by_interaction_respects_warmup():
    log = RequestLog()
    early = Request(0, "ViewStory", 0.0, {})
    early.completion = 1.0
    late = Request(1, "ViewStory", 50.0, {})
    late.completion = 51.0
    log.record(early)
    log.record(late)
    groups = log.by_interaction(after=10.0)
    assert len(groups["ViewStory"]) == 1
