"""Tests for the analysis helpers."""

import math

import numpy as np
import pytest

from repro.analysis.compare import FrameworkResult, compare_frameworks, improvement
from repro.analysis.series import (
    coefficient_of_variation,
    group_mean_by_time,
    moving_average,
)
from repro.analysis.stats import fluctuation_summary, spike_episodes, time_above
from repro.errors import ReproError


# ----------------------------------------------------------------------
# series
# ----------------------------------------------------------------------

def test_moving_average_flat_series():
    out = moving_average([5.0] * 10, window=3)
    assert np.allclose(out, 5.0)


def test_moving_average_skips_nan():
    out = moving_average([1.0, math.nan, 3.0], window=3)
    assert out[1] == pytest.approx(2.0)


def test_moving_average_edges_unbiased():
    out = moving_average([10.0, 10.0, 10.0, 10.0], window=5)
    assert np.allclose(out, 10.0)  # shrinking edge windows, no zero-pad


def test_moving_average_validation():
    with pytest.raises(ReproError):
        moving_average([1.0], window=0)
    with pytest.raises(ReproError):
        moving_average(np.zeros((2, 2)), window=3)


def _naive_group_mean(times, values):
    by_time = {}
    for t, v in zip(times, values):
        by_time.setdefault(t, []).append(v)
    ts = sorted(by_time)
    return np.array(ts), np.array([np.mean(by_time[t]) for t in ts])


def test_group_mean_by_time_matches_naive():
    rng = np.random.default_rng(0)
    times = rng.choice(np.arange(0.0, 50.0), size=400)
    values = rng.normal(size=400)
    t_fast, v_fast = group_mean_by_time(times, values)
    t_ref, v_ref = _naive_group_mean(times, values)
    assert np.array_equal(t_fast, t_ref)
    assert np.allclose(v_fast, v_ref)


def test_group_mean_by_time_empty_and_invalid():
    t, v = group_mean_by_time([], [])
    assert t.size == 0 and v.size == 0
    with pytest.raises(ReproError):
        group_mean_by_time([1.0, 2.0], [1.0])


def test_cov():
    assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0
    assert coefficient_of_variation([]) != coefficient_of_variation([])  # NaN
    v = coefficient_of_variation([1.0, 3.0])
    assert v == pytest.approx(0.5)


# ----------------------------------------------------------------------
# spikes
# ----------------------------------------------------------------------

def test_spike_episodes_basic():
    t = [0, 1, 2, 3, 4, 5]
    v = [1, 9, 9, 1, 9, 1]
    eps = spike_episodes(t, v, threshold=5)
    assert eps == [(1.0, 3.0), (4.0, 5.0)]


def test_spike_open_ended():
    eps = spike_episodes([0, 1, 2], [1, 9, 9], threshold=5)
    assert eps == [(1.0, 2.0)]


def test_spike_nan_breaks_episode():
    eps = spike_episodes([0, 1, 2, 3], [9, math.nan, 9, 1], threshold=5)
    assert len(eps) == 2


def test_spike_shape_mismatch():
    with pytest.raises(ReproError):
        spike_episodes([0, 1], [1.0], threshold=5)


def test_time_above():
    t = list(range(10))
    v = [0, 9, 9, 9, 0, 0, 9, 0, 0, 0]
    assert time_above(t, v, 5) == pytest.approx(4.0)


def test_fluctuation_summary():
    t = [0, 1, 2, 3]
    v = [0.1, 2.0, 0.1, 0.1]
    s = fluctuation_summary(t, v, sla=0.5)
    assert s.n_spikes == 1
    assert s.worst_value == 2.0
    assert s.time_above_sla == pytest.approx(1.0)
    assert s.cov > 1.0


# ----------------------------------------------------------------------
# comparisons
# ----------------------------------------------------------------------

def test_improvement():
    assert improvement(200.0, 100.0) == 2.0
    with pytest.raises(ReproError):
        improvement(1.0, 0.0)


def test_compare_frameworks():
    lat_bad = np.linspace(0.01, 2.0, 100)
    lat_good = np.linspace(0.01, 0.5, 100)
    results = [
        FrameworkResult.from_latencies("ec2", "big_spike", lat_bad),
        FrameworkResult.from_latencies("conscale", "big_spike", lat_good),
    ]
    table = compare_frameworks(results, baseline="ec2")
    row = table[("conscale", "big_spike")]
    assert row["p99_improvement"] == pytest.approx(4.0, rel=0.05)
    assert "p99_improvement" not in table[("ec2", "big_spike")]
