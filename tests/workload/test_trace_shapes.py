"""Tests for traces and the six bursty shapes."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.workload.shapes import TRACE_NAMES, make_trace
from repro.workload.trace import Trace


# ----------------------------------------------------------------------
# Trace basics
# ----------------------------------------------------------------------

def test_trace_validation():
    with pytest.raises(TraceError):
        Trace("t", [0.0], [1.0])  # too short
    with pytest.raises(TraceError):
        Trace("t", [0.0, 0.0], [1.0, 2.0])  # non-increasing
    with pytest.raises(TraceError):
        Trace("t", [0.0, 1.0], [1.0, -2.0])  # negative users
    with pytest.raises(TraceError):
        Trace("t", [1.0, 2.0], [1.0, 2.0])  # must start at 0


def test_users_at_interpolates_linearly():
    tr = Trace("t", [0.0, 10.0], [0.0, 100.0])
    assert tr.users_at(5.0) == pytest.approx(50.0)
    assert tr.users_at(-1.0) == 0.0  # clamped
    assert tr.users_at(20.0) == 100.0  # clamped


def test_duration_and_max_users():
    tr = Trace("t", [0.0, 5.0, 10.0], [10.0, 80.0, 20.0])
    assert tr.duration == 10.0
    assert tr.max_users == 80.0


def test_sample_grid():
    tr = Trace("t", [0.0, 10.0], [0.0, 10.0])
    grid, users = tr.sample(2.5)
    assert list(grid) == [0.0, 2.5, 5.0, 7.5, 10.0]
    assert users[2] == pytest.approx(5.0)
    with pytest.raises(TraceError):
        tr.sample(0.0)


def test_scaled():
    tr = Trace("t", [0.0, 10.0], [0.0, 100.0])
    s = tr.scaled(user_factor=0.5, time_factor=2.0)
    assert s.duration == 20.0
    assert s.max_users == 50.0
    with pytest.raises(TraceError):
        tr.scaled(user_factor=0.0)


def test_truncated():
    tr = Trace("t", [0.0, 10.0, 20.0], [0.0, 100.0, 0.0])
    cut = tr.truncated(15.0)
    assert cut.duration == 15.0
    assert cut.users_at(15.0) == pytest.approx(50.0)
    assert tr.truncated(100.0) is tr
    with pytest.raises(TraceError):
        tr.truncated(0.0)


# ----------------------------------------------------------------------
# the six shapes
# ----------------------------------------------------------------------

def test_six_trace_names():
    assert set(TRACE_NAMES) == {
        "large_variations", "quickly_varying", "slowly_varying",
        "big_spike", "dual_phase", "steep_tri_phase",
    }


@pytest.mark.parametrize("name", TRACE_NAMES)
def test_shape_basics(name):
    tr = make_trace(name, max_users=7500, duration=700)
    assert tr.duration == pytest.approx(700.0)
    assert tr.max_users <= 7500.0 + 1e-9
    assert tr.max_users >= 0.7 * 7500.0  # bursts reach near peak
    assert tr.users.min() >= 0.02 * 7500.0 - 1e-9


@pytest.mark.parametrize("name", TRACE_NAMES)
def test_shapes_start_below_single_server_capacity(name):
    """Runs must start within the 1/1/1 topology's capacity so the
    initial spike is a scaling phenomenon, not a day-0 overload."""
    tr = make_trace(name, max_users=7500, duration=700)
    assert tr.users_at(0.0) <= 0.25 * 7500.0


@pytest.mark.parametrize("name", TRACE_NAMES)
def test_shapes_are_deterministic(name):
    a = make_trace(name)
    b = make_trace(name)
    assert np.array_equal(a.users, b.users)


def test_big_spike_has_single_burst():
    tr = make_trace("big_spike", 1000, 700)
    above = tr.users > 0.8 * tr.max_users
    # a contiguous block around 42% of the run
    idx = np.where(above)[0]
    assert idx.size > 0
    assert idx[-1] - idx[0] == idx.size - 1  # contiguous


def test_dual_phase_levels():
    tr = make_trace("dual_phase", 1000, 700)
    early = tr.users_at(100.0)
    late = tr.users_at(600.0)
    assert late > 2.0 * early


def test_tri_phase_monotone_steps():
    tr = make_trace("steep_tri_phase", 1000, 700)
    l1, l2, l3 = tr.users_at(80.0), tr.users_at(350.0), tr.users_at(620.0)
    assert l1 < l2 < l3


def test_unknown_trace_raises():
    with pytest.raises(TraceError):
        make_trace("nonexistent")


# ----------------------------------------------------------------------
# CSV round-trip
# ----------------------------------------------------------------------

def test_trace_csv_roundtrip(tmp_path):
    tr = make_trace("big_spike", 1000, 700)
    path = tr.to_csv(str(tmp_path / "sub" / "spike.csv"))
    back = Trace.from_csv(path)
    assert back.name == "spike"
    assert np.allclose(back.times, tr.times)
    assert np.allclose(back.users, tr.users)


def test_trace_from_csv_skips_header_and_names(tmp_path):
    path = tmp_path / "mytrace.csv"
    path.write_text("t_s,users\n0,100\n10,300\n20,50\n")
    tr = Trace.from_csv(str(path))
    assert tr.name == "mytrace"
    assert tr.users_at(5.0) == pytest.approx(200.0)


def test_trace_from_csv_custom_name(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("0,1\n5,2\n")
    assert Trace.from_csv(str(path), name="prod").name == "prod"


def test_trace_from_csv_errors(tmp_path):
    with pytest.raises(TraceError):
        Trace.from_csv(str(tmp_path / "missing.csv"))
    empty = tmp_path / "empty.csv"
    empty.write_text("t_s,users\n")
    with pytest.raises(TraceError):
        Trace.from_csv(str(empty))


def test_runner_accepts_csv_trace(tmp_path):
    from repro.experiments.runner import run_experiment
    from repro.experiments.scenarios import ScenarioConfig

    path = tmp_path / "flat.csv"
    # 150s of constant 2,000 users (divided by load scale below)
    path.write_text("t_s,users\n0,2000\n150,2000\n")
    config = ScenarioConfig(
        name="csv", trace_name=str(path), load_scale=100.0, duration=150.0,
        seed=5,
    )
    result = run_experiment("ec2", config)
    assert result.completed > 500
