"""Tests for the open- and closed-loop request generators."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.generator import (
    ClosedLoopGenerator,
    OpenLoopGenerator,
    RequestFactory,
)
from repro.workload.trace import Trace

from tests.conftest import build_app, tiny_mix


def make_factory(rng, **kw):
    return RequestFactory(tiny_mix(**kw), rng.stream("demand"))


def test_factory_assigns_unique_ids(rng):
    fac = make_factory(rng)
    ids = [fac.create(0.0).req_id for _ in range(5)]
    assert ids == [0, 1, 2, 3, 4]


def test_factory_validation(rng):
    with pytest.raises(ConfigurationError):
        RequestFactory(tiny_mix(), rng.stream("d"), dataset_scale=0.0)
    with pytest.raises(ConfigurationError):
        RequestFactory(tiny_mix(), rng.stream("d"), demand_scale=-1.0)


def test_factory_demand_scale(rng):
    fac = RequestFactory(tiny_mix(cv=0.0), rng.stream("d"), demand_scale=10.0)
    req = fac.create(0.0)
    assert req.demands["db"] == pytest.approx(0.05)


# ----------------------------------------------------------------------
# open loop
# ----------------------------------------------------------------------

def test_open_loop_rate_tracks_trace(sim, rng):
    app = build_app(sim, db_a_sat=1000)
    trace = Trace("flat", [0.0, 60.0], [100.0, 100.0])
    gen = OpenLoopGenerator(
        sim, app, trace, make_factory(rng), rng.stream("arr"), think_time=1.0
    )
    gen.start()
    sim.run(until=60.0)
    # expected 100 req/s * 60 s = 6000 +- sampling noise
    assert gen.generated == pytest.approx(6000, rel=0.10)


def test_open_loop_zero_load_produces_nothing(sim, rng):
    app = build_app(sim)
    trace = Trace("zero", [0.0, 10.0], [0.0, 0.0])
    gen = OpenLoopGenerator(
        sim, app, trace, make_factory(rng), rng.stream("arr")
    )
    gen.start()
    sim.run(until=10.0)
    assert gen.generated == 0


def test_open_loop_stops_at_trace_end(sim, rng):
    app = build_app(sim)
    trace = Trace("short", [0.0, 5.0], [50.0, 50.0])
    gen = OpenLoopGenerator(
        sim, app, trace, make_factory(rng), rng.stream("arr"), think_time=1.0
    )
    gen.start()
    sim.run(until=20.0)
    count_at_5 = gen.generated
    sim.run()
    assert gen.generated == count_at_5


def test_open_loop_stop(sim, rng):
    app = build_app(sim)
    trace = Trace("flat", [0.0, 100.0], [100.0, 100.0])
    gen = OpenLoopGenerator(
        sim, app, trace, make_factory(rng), rng.stream("arr"), think_time=1.0
    )
    gen.start()
    sim.schedule(1.0, gen.stop)
    sim.run(until=10.0)
    assert gen.generated < 300


def test_open_loop_think_time_validation(sim, rng):
    app = build_app(sim)
    trace = Trace("flat", [0.0, 1.0], [1.0, 1.0])
    with pytest.raises(ConfigurationError):
        OpenLoopGenerator(sim, app, trace, make_factory(rng), rng.stream("a"),
                          think_time=0.0)


def test_open_loop_rate_at(sim, rng):
    app = build_app(sim)
    trace = Trace("ramp", [0.0, 10.0], [0.0, 100.0])
    gen = OpenLoopGenerator(
        sim, app, trace, make_factory(rng), rng.stream("arr"), think_time=2.0
    )
    assert gen.rate_at(5.0) == pytest.approx(25.0)


def test_open_loop_suspend_pauses_arrivals(sim, rng):
    app = build_app(sim, db_a_sat=1000)
    trace = Trace("flat", [0.0, 60.0], [100.0, 100.0])
    gen = OpenLoopGenerator(
        sim, app, trace, make_factory(rng), rng.stream("arr"), think_time=1.0
    )
    gen.start()
    counts: list[int] = []
    sim.schedule(10.0, gen.suspend)
    sim.schedule(10.0, lambda: counts.append(gen.generated))
    sim.schedule(20.0, lambda: counts.append(gen.generated))
    sim.schedule(20.0, gen.resume)
    sim.run(until=30.0)
    # No arrivals during the suspension window; flow resumes after.
    assert counts[0] == counts[1] > 0
    assert gen.generated > counts[1]


def test_open_loop_resume_without_suspend_is_noop(sim, rng):
    app = build_app(sim, db_a_sat=1000)
    trace = Trace("flat", [0.0, 10.0], [50.0, 50.0])
    gen = OpenLoopGenerator(
        sim, app, trace, make_factory(rng), rng.stream("arr"), think_time=1.0
    )
    gen.start()
    sim.schedule(5.0, gen.resume)  # must not double-schedule arrivals
    sim.run(until=10.0)
    assert gen.generated == pytest.approx(500, rel=0.15)


def test_open_loop_suspended_at_stop_stays_stopped(sim, rng):
    app = build_app(sim, db_a_sat=1000)
    trace = Trace("flat", [0.0, 60.0], [100.0, 100.0])
    gen = OpenLoopGenerator(
        sim, app, trace, make_factory(rng), rng.stream("arr"), think_time=1.0
    )
    gen.start()
    sim.schedule(5.0, gen.suspend)
    sim.schedule(6.0, gen.stop)
    sim.schedule(7.0, gen.resume)
    sim.run(until=20.0)
    assert gen.generated == pytest.approx(500, rel=0.20)


# ----------------------------------------------------------------------
# closed loop
# ----------------------------------------------------------------------

def test_closed_loop_pins_concurrency(sim, rng):
    app = build_app(sim, db_a_sat=1000)
    gen = ClosedLoopGenerator(
        sim, app, 5, make_factory(rng), rng.stream("u"), think_time=0.0
    )
    gen.start()
    observed = []
    for t in (0.05, 0.1, 0.15):
        sim.schedule(t, lambda: observed.append(app.in_flight))
    sim.run(until=0.2)
    assert observed == [5, 5, 5]


def test_closed_loop_throughput_littles_law(sim, rng):
    app = build_app(sim, db_a_sat=1000)
    gen = ClosedLoopGenerator(
        sim, app, 4, make_factory(rng, cv=0.0), rng.stream("u"), think_time=0.0
    )
    gen.start()
    sim.run(until=10.0)
    # demands sum to 7.5 ms, 4 users, no queueing -> ~533 req/s
    assert app.completed == pytest.approx(4 / 0.0075 * 10.0, rel=0.05)


def test_closed_loop_with_think_time(sim, rng):
    app = build_app(sim, db_a_sat=1000)
    gen = ClosedLoopGenerator(
        sim, app, 10, make_factory(rng), rng.stream("u"), think_time=1.0
    )
    gen.start()
    sim.run(until=20.0)
    # each user completes roughly 1/(1s + 8ms) per second
    assert app.completed == pytest.approx(10 * 20 / 1.0075, rel=0.15)


def test_closed_loop_stop(sim, rng):
    app = build_app(sim)
    gen = ClosedLoopGenerator(
        sim, app, 3, make_factory(rng), rng.stream("u"), think_time=0.0
    )
    gen.start()
    sim.schedule(0.5, gen.stop)
    sim.run(until=2.0)
    assert app.in_flight == 0  # all in-flight finished, none re-issued


def test_closed_loop_grow_population(sim, rng):
    app = build_app(sim, db_a_sat=1000)
    gen = ClosedLoopGenerator(
        sim, app, 2, make_factory(rng), rng.stream("u"), think_time=0.0
    )
    gen.start()
    sim.schedule(0.1, gen.set_population, 6)
    observed = []
    sim.schedule(0.2, lambda: observed.append(app.in_flight))
    sim.run(until=0.3)
    assert observed == [6]


def test_closed_loop_validation(sim, rng):
    app = build_app(sim)
    with pytest.raises(ConfigurationError):
        ClosedLoopGenerator(sim, app, 0, make_factory(rng), rng.stream("u"))
    with pytest.raises(ConfigurationError):
        ClosedLoopGenerator(sim, app, 1, make_factory(rng), rng.stream("u"),
                            think_time=-1.0)


# ----------------------------------------------------------------------
# client timeouts / abandonment
# ----------------------------------------------------------------------

def test_closed_loop_timeout_validation(sim, rng):
    app = build_app(sim)
    with pytest.raises(ConfigurationError):
        ClosedLoopGenerator(sim, app, 1, make_factory(rng), rng.stream("u"),
                            timeout=0.0)


def test_generous_timeout_changes_nothing(sim, rng):
    app = build_app(sim, db_a_sat=1000)
    gen = ClosedLoopGenerator(
        sim, app, 4, make_factory(rng, cv=0.0), rng.stream("u"),
        think_time=0.0, timeout=10.0,
    )
    gen.start()
    sim.run(until=10.0)
    assert gen.timeouts == 0
    assert app.completed == pytest.approx(4 / 0.0075 * 10.0, rel=0.05)


def test_tight_timeout_under_overload_abandons_and_retries(sim, rng):
    # a_sat=1 db with 20 users: steady RT ~ 20*5ms = 100ms >> 30ms timeout
    app = build_app(sim, db_a_sat=1.0)
    gen = ClosedLoopGenerator(
        sim, app, 20, make_factory(rng, cv=0.0), rng.stream("u"),
        think_time=0.0, timeout=0.030,
    )
    gen.start()
    sim.run(until=10.0)
    assert gen.timeouts > 50, "expected many abandonments under overload"
    # retry amplification: abandoned requests still occupy the system,
    # so in-flight work exceeds the user population
    assert app.in_flight > 20


def test_timeout_survivors_still_counted_once(sim, rng):
    """A request that completes after its user abandoned must not
    re-trigger that user's loop (no double-issue)."""
    app = build_app(sim, db_a_sat=1.0)
    gen = ClosedLoopGenerator(
        sim, app, 5, make_factory(rng, cv=0.0), rng.stream("u"),
        think_time=0.0, timeout=0.020,
    )
    gen.start()
    sim.run(until=5.0)
    gen.stop()
    sim.run(until=30.0)  # drain everything
    assert app.in_flight == 0
    # conservation: every generated request either completed or is gone
    assert app.completed == app.submitted
    # and the number of issues equals completions+timeouts bookkeeping
    assert gen.generated <= app.submitted + 1
