"""Tests for the RUBBoS catalog and workload mixes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.mixes import WorkloadMix, browse_only_mix, read_write_mix
from repro.workload.rubbos import CATALOG, interaction_by_name

BASE = {"web": (0.001, 0.1), "app": (0.002, 0.2), "db": (0.005, 0.3)}


def test_catalog_has_24_interactions():
    assert len(CATALOG) == 24
    assert len({i.name for i in CATALOG}) == 24


def test_catalog_has_writes_and_reads():
    writes = [i for i in CATALOG if i.write]
    assert 3 <= len(writes) <= 8
    assert all(i.name.startswith("Store") for i in writes)


def test_interaction_lookup():
    assert interaction_by_name("ViewStory").db_mult == 1.0
    with pytest.raises(KeyError):
        interaction_by_name("NoSuchServlet")


def test_browse_only_mix_has_no_writes():
    mix = browse_only_mix(BASE)
    assert mix.write_fraction() == 0.0


def test_read_write_mix_has_writes():
    mix = read_write_mix(BASE)
    assert 0.08 <= mix.write_fraction() <= 0.25


def test_mix_validation():
    with pytest.raises(ConfigurationError):
        WorkloadMix("empty", {}, BASE)
    with pytest.raises(ConfigurationError):
        WorkloadMix("bad", {"NoSuchServlet": 1.0}, BASE)
    with pytest.raises(ConfigurationError):
        WorkloadMix("zero", {"ViewStory": 0.0}, BASE)


def test_sampling_follows_weights():
    mix = WorkloadMix("two", {"ViewStory": 3.0, "SearchInStories": 1.0}, BASE)
    rng = np.random.default_rng(0)
    draws = [mix.sample_interaction(rng) for _ in range(2000)]
    frac = draws.count("ViewStory") / len(draws)
    assert frac == pytest.approx(0.75, abs=0.03)


def test_mean_demand_is_weighted():
    mix = WorkloadMix("two", {"ViewStory": 1.0, "SearchInStories": 1.0}, BASE)
    # db multipliers: ViewStory 1.0, SearchInStories 2.0 -> mean 1.5x base
    assert mix.mean_demand("db") == pytest.approx(0.005 * 1.5)


def test_mean_demand_dataset_scaling():
    mix = WorkloadMix("one", {"ViewStory": 1.0}, BASE)
    # db demand scales linearly with the dataset
    assert mix.mean_demand("db", dataset_scale=2.0) == pytest.approx(0.010)
    # web demand does not
    assert mix.mean_demand("web", dataset_scale=2.0) == pytest.approx(0.001)


def test_profile_access():
    mix = browse_only_mix(BASE)
    profile = mix.profile("ViewStory")
    assert profile.interaction == "ViewStory"
    assert set(profile.tiers) == {"web", "app", "db"}


def test_interactions_sorted():
    mix = browse_only_mix(BASE)
    assert mix.interactions == sorted(mix.interactions)
