"""Tests for the Markov session workload model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.sessions import (
    SessionRequestFactory,
    TransitionMatrix,
    browse_session_matrix,
)

BASE = {"web": (0.001, 0.1), "app": (0.002, 0.2), "db": (0.005, 0.3)}


def two_state():
    return TransitionMatrix(
        ["ViewStory", "ViewComment"],
        [[0.2, 0.8], [0.6, 0.4]],
    )


# ----------------------------------------------------------------------
# TransitionMatrix
# ----------------------------------------------------------------------

def test_validation():
    with pytest.raises(ConfigurationError):
        TransitionMatrix([], [])
    with pytest.raises(ConfigurationError):
        TransitionMatrix(["ViewStory"], [[0.5]])  # row does not sum to 1
    with pytest.raises(ConfigurationError):
        TransitionMatrix(["ViewStory", "ViewComment"], [[1.0, 0.0]])  # shape
    with pytest.raises(ConfigurationError):
        TransitionMatrix(["ViewStory"], [[-1.0]])
    with pytest.raises(KeyError):
        TransitionMatrix(["NoSuchServlet"], [[1.0]])


def test_stationary_matches_eigenvector():
    tm = two_state()
    pi = tm.stationary()
    # analytic stationary of [[.2,.8],[.6,.4]]: pi = (3/7, 4/7)
    assert pi == pytest.approx([3 / 7, 4 / 7], rel=1e-6)
    # and it is a fixed point
    assert pi @ tm.p == pytest.approx(pi, rel=1e-9)


def test_sample_next_follows_rows():
    tm = two_state()
    rng = np.random.default_rng(0)
    draws = [tm.sample_next(rng, "ViewStory") for _ in range(4000)]
    frac_comment = draws.count("ViewComment") / len(draws)
    assert frac_comment == pytest.approx(0.8, abs=0.02)


def test_fresh_session_uniform_entry():
    tm = two_state()
    rng = np.random.default_rng(1)
    draws = [tm.sample_next(rng, None) for _ in range(4000)]
    assert draws.count("ViewStory") / len(draws) == pytest.approx(0.5, abs=0.03)


def test_stationary_mix_demands():
    tm = two_state()
    mix = tm.stationary_mix(BASE)
    # db demand: ViewStory mult 1.0, ViewComment 0.9 weighted 3/7, 4/7
    expected = 0.005 * (1.0 * 3 / 7 + 0.9 * 4 / 7)
    assert mix.mean_demand("db") == pytest.approx(expected, rel=1e-6)


# ----------------------------------------------------------------------
# the built-in browse graph
# ----------------------------------------------------------------------

def test_browse_matrix_is_well_formed():
    tm = browse_session_matrix()
    assert len(tm.interactions) == 8
    pi = tm.stationary()
    assert pi.sum() == pytest.approx(1.0)
    assert (pi > 0).all()  # irreducible
    # ViewStory is the hub page: highest long-run frequency
    idx = tm.interactions.index("ViewStory")
    assert pi[idx] == pi.max()


# ----------------------------------------------------------------------
# SessionRequestFactory
# ----------------------------------------------------------------------

def test_factory_sequential_correlation():
    """Per-user sequences must follow the chain: after a ViewStory the
    same user's next request is ViewComment far more often than the
    stationary frequency."""
    tm = two_state()
    rng = np.random.default_rng(2)
    factory = SessionRequestFactory(tm, BASE, rng, n_users=4,
                                    session_length=10_000)
    per_user: dict[int, list[str]] = {u: [] for u in range(4)}
    for i in range(8000):
        req = factory.create(0.0)
        per_user[i % 4].append(req.interaction)
    follows = 0
    total = 0
    for seq in per_user.values():
        for a, b in zip(seq, seq[1:]):
            if a == "ViewStory":
                total += 1
                follows += b == "ViewComment"
    assert follows / total == pytest.approx(0.8, abs=0.04)


def test_factory_session_reset():
    tm = two_state()
    rng = np.random.default_rng(3)
    factory = SessionRequestFactory(tm, BASE, rng, n_users=1, session_length=3)
    for _ in range(3):
        factory.create(0.0)
    # after session_length requests the user's state resets
    assert factory._state[0] is None


def test_factory_validation():
    tm = two_state()
    rng = np.random.default_rng(0)
    with pytest.raises(ConfigurationError):
        SessionRequestFactory(tm, BASE, rng, n_users=0)
    with pytest.raises(ConfigurationError):
        SessionRequestFactory(tm, BASE, rng, session_length=0)


def test_factory_drives_generators_end_to_end(sim, rng):
    from repro.workload.generator import ClosedLoopGenerator
    from tests.conftest import build_app

    app = build_app(sim, db_a_sat=1000)
    factory = SessionRequestFactory(
        browse_session_matrix(), BASE, rng.stream("s"), n_users=8
    )
    gen = ClosedLoopGenerator(sim, app, 8, factory, rng.stream("u"))
    gen.start()
    sim.run(until=5.0)
    assert app.completed > 1000
    assert app.in_flight <= 8
