"""Integration tests for the three scaling frameworks on small runs."""

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import ScenarioConfig
from repro.ntier.app import DB
from repro.scaling.dcm import DcmTrainedProfile


def small_config(**kw):
    defaults = dict(
        name="test", trace_name="dual_phase", load_scale=100.0,
        duration=200.0, seed=11,
    )
    defaults.update(kw)
    return ScenarioConfig(**defaults)


def test_ec2_scales_out_under_load():
    res = run_experiment("ec2", small_config())
    assert res.completed > 1000
    assert res.generated - res.completed < 50  # drained
    outs = res.actions.of_kind("scale_out_ready")
    assert outs, "the dual-phase step must trigger scale-out"
    # EC2 never touches soft resources
    assert not res.actions.of_kind(
        "soft_app_threads", "soft_db_connections", "soft_web_threads"
    )


def test_ec2_vm_count_grows_with_load():
    res = run_experiment("ec2", small_config())
    assert res.vm_counts.max() > 3
    assert res.vm_counts[0] == 3


def test_dcm_applies_trained_profile_at_start_and_scaling():
    profile = DcmTrainedProfile(app_optimal=33, db_optimal=9)
    res = run_experiment("dcm", small_config(), dcm_profile=profile)
    app_sets = res.actions.of_kind("soft_app_threads")
    assert app_sets and app_sets[0].value == 33
    conn_sets = res.actions.of_kind("soft_db_connections")
    assert conn_sets and conn_sets[0].value == 9


def test_conscale_adapts_db_connections():
    res = run_experiment("conscale", small_config())
    conn_sets = res.actions.of_kind("soft_db_connections")
    assert conn_sets, "ConScale must re-allocate the DB connection pools"
    # estimates were produced for both managed tiers
    assert res.estimates[DB], "SCT estimates for the DB tier expected"
    # at least one actionable estimate near the true per-server optimum
    actionable = [e for e in res.estimates[DB] if e.actionable]
    assert actionable
    assert any(7 <= e.optimal <= 14 for e in actionable)


def test_conscale_caps_db_concurrency_below_static():
    res = run_experiment("conscale", small_config())
    values = [a.value for a in res.actions.of_kind("soft_db_connections")]
    assert min(values) < 40  # tightened below the static 40


def test_frameworks_share_hardware_policy_shape():
    """All three scale out on the dual-phase step; the count may differ
    by a VM or two but the direction must match."""
    maxima = {}
    for fw in ("ec2", "dcm", "conscale"):
        res = run_experiment(fw, small_config())
        maxima[fw] = int(res.vm_counts.max())
    assert all(v >= 4 for v in maxima.values())


def test_unknown_framework_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        run_experiment("k8s-hpa", small_config())


def test_runs_are_deterministic():
    a = run_experiment("ec2", small_config())
    b = run_experiment("ec2", small_config())
    assert a.completed == b.completed
    assert a.tail().p99 == pytest.approx(b.tail().p99)
    assert list(a.vm_counts) == list(b.vm_counts)


def test_latencies_reported_at_base_scale():
    """The load-scaling contract: reported latencies are divided by the
    scale, so an idle-ish request costs ~base demands, not scale x."""
    res = run_experiment("ec2", small_config())
    # the fastest requests should be near the base no-queue latency
    # (web+app+db ~ 27 ms), far below load_scale times that
    assert res.latencies.min() < 0.06
