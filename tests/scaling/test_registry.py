"""Controller-registry contracts.

The registry is the single source of framework truth, so these tests
pin the guarantees everything else leans on: registration rules
(duplicate names, decision-kind vocabulary), schema lookup errors that
spell out what *is* valid, digest-stable param coercion, params riding
the cache key, and — the headline — a third-party controller registered
at runtime working end-to-end: RunSpec construction, deterministic
digests and signatures on both the serial and process backends, and the
dynamic ``FRAMEWORKS`` re-exports picking it up.

Simulation runs use the reduced scale of ``test_engine`` (load_scale
300, 60 s).
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.errors import ConfigurationError
from repro.experiments.artifact import RunOverrides, RunSpec
from repro.experiments.engine import ExperimentEngine
from repro.experiments.runner import execute_spec
from repro.scaling.controller import BaseController
from repro.scaling.registry import (
    ControllerSpec,
    ParamSpec,
    controller_specs,
    get_controller,
    parse_cli_params,
    register_controller,
    registered_frameworks,
    unregister_controller,
)
from tests.experiments.test_engine import small_config

BUILTINS = ("ec2", "dcm", "conscale", "predictive", "mpc", "qos")


# ----------------------------------------------------------------------
# registration rules
# ----------------------------------------------------------------------

def test_builtins_registered_in_order():
    assert registered_frameworks()[: len(BUILTINS)] == BUILTINS
    assert tuple(s.name for s in controller_specs())[: len(BUILTINS)] == BUILTINS


def test_duplicate_name_rejected():
    spec = get_controller("ec2")
    with pytest.raises(ConfigurationError, match="already registered"):
        register_controller(spec)


def test_unknown_framework_error_lists_registered_names():
    with pytest.raises(ConfigurationError) as exc:
        get_controller("borg")
    for name in BUILTINS:
        assert name in str(exc.value)
    # RunSpec validates through the same path.
    with pytest.raises(ConfigurationError, match="conscale"):
        RunSpec("borg", small_config())


def test_unregister_unknown_rejected():
    with pytest.raises(ConfigurationError, match="not registered"):
        unregister_controller("borg")


def test_decision_kinds_validated_against_vocabulary():
    spec = ControllerSpec(
        name="loose",
        factory=lambda ctx: None,
        decision_kinds=("made_up_kind",),
    )
    with pytest.raises(ConfigurationError, match="made_up_kind"):
        register_controller(spec)
    assert "loose" not in registered_frameworks()


def test_duplicate_param_names_rejected():
    with pytest.raises(ConfigurationError, match="duplicate param"):
        ControllerSpec(
            name="twice",
            factory=lambda ctx: None,
            params=(ParamSpec("g", "float", 1.0), ParamSpec("g", "int", 1)),
        )


# ----------------------------------------------------------------------
# schema lookup + coercion
# ----------------------------------------------------------------------

def test_unknown_param_error_lists_valid_params():
    conscale = get_controller("conscale")
    with pytest.raises(ConfigurationError) as exc:
        conscale.param("gain")
    assert "headroom" in str(exc.value)
    # ec2 declares no params of its own; only the auto-injected
    # fault_aware ablation switch shows up in the listing.
    with pytest.raises(ConfigurationError, match="valid params: fault_aware"):
        get_controller("ec2").param("headroom")


def test_coercion_rejects_wrong_kinds():
    conscale = get_controller("conscale")
    with pytest.raises(ConfigurationError, match="expects a float"):
        conscale.param("headroom").coerce("wide")
    with pytest.raises(ConfigurationError, match="expects a bool"):
        conscale.param("per_server_app").coerce(1)
    mpc = get_controller("mpc")
    with pytest.raises(ConfigurationError, match="expects an int"):
        mpc.param("q_max").coerce(2.5)
    assert mpc.param("q_max").coerce(200.0) == 200  # integral float is fine


def test_resolve_overlays_defaults():
    conscale = get_controller("conscale")
    params = conscale.resolve({"headroom": 2.0})
    assert params["headroom"] == 2.0
    assert params["adapt_interval"] == 2.0  # untouched default
    # coerce_params leaves defaults out — that is what keeps old cache
    # digests valid when a schema grows a new parameter.
    assert conscale.coerce_params({"headroom": 2.0}) == {"headroom": 2.0}


def test_cli_param_parsing():
    parsed = parse_cli_params(
        "conscale", ["headroom=1.3", "per_server_app=yes"]
    )
    assert parsed == {"headroom": 1.3, "per_server_app": True}
    with pytest.raises(ConfigurationError, match="NAME=VALUE"):
        parse_cli_params("conscale", ["headroom"])
    with pytest.raises(ConfigurationError, match="expects a float"):
        parse_cli_params("conscale", ["headroom=wide"])
    with pytest.raises(ConfigurationError, match="cannot be set"):
        parse_cli_params("dcm", ["profile=x"])  # object params are API-only


# ----------------------------------------------------------------------
# params ride the digest (and therefore the cache key)
# ----------------------------------------------------------------------

def test_equivalent_spellings_digest_identically():
    int_spelled = RunSpec(
        "conscale", small_config(), RunOverrides.from_params({"headroom": 1})
    )
    float_spelled = RunSpec(
        "conscale", small_config(), RunOverrides.from_params({"headroom": 1.0})
    )
    assert int_spelled.digest() == float_spelled.digest()


def test_param_change_changes_digest():
    narrow = RunSpec(
        "conscale", small_config(), RunOverrides.from_params({"headroom": 1.2})
    )
    wide = RunSpec(
        "conscale", small_config(), RunOverrides.from_params({"headroom": 3.0})
    )
    plain = RunSpec("conscale", small_config())
    assert len({narrow.digest(), wide.digest(), plain.digest()}) == 3


def test_unknown_param_rejected_at_spec_construction():
    with pytest.raises(ConfigurationError, match="no param 'gain'"):
        RunSpec(
            "conscale", small_config(), RunOverrides.from_params({"gain": 2.0})
        )


def test_params_are_cache_axis(tmp_path):
    engine = ExperimentEngine(cache_dir=str(tmp_path / "cache"))
    spec = RunSpec(
        "conscale", small_config(), RunOverrides.from_params({"headroom": 1.3})
    )
    first = engine.run(spec)
    assert (engine.stats.hits, engine.stats.misses) == (0, 1)
    again = engine.run(
        RunSpec(
            "conscale",
            small_config(),
            RunOverrides.from_params({"headroom": 1.3}),
        )
    )
    assert (engine.stats.hits, engine.stats.misses) == (1, 1)
    assert again.signature() == first.signature()
    engine.run(
        RunSpec(
            "conscale",
            small_config(),
            RunOverrides.from_params({"headroom": 1.4}),
        )
    )
    assert (engine.stats.hits, engine.stats.misses) == (1, 2)


# ----------------------------------------------------------------------
# a third-party controller plugs in end to end
# ----------------------------------------------------------------------

class PacedController(BaseController):
    """Minimal plugin: one soft cap actuated from a registered param."""

    name = "paced"

    def __init__(self, sim, warehouse, actuator, tier_configs=None,
                 tick=1.0, app_threads=48):
        super().__init__(sim, warehouse, actuator, tier_configs, tick)
        self.app_threads = int(app_threads)

    def periodic_adapt(self, now):
        if self.actuator.factory.thread_limit("app") != self.app_threads:
            self.actuator.set_app_threads(
                self.app_threads, reason="paced: fixed plugin cap"
            )


PACED_SPEC = ControllerSpec(
    name="paced",
    summary="test plugin: fixed app-thread cap",
    factory=lambda ctx: PacedController(
        ctx.sim, ctx.warehouse, ctx.actuator, ctx.tier_configs,
        app_threads=ctx.params["app_threads"],
    ),
    params=(ParamSpec("app_threads", "int", 48, help="fixed app cap"),),
)


@pytest.fixture()
def paced_registered():
    register_controller(PACED_SPEC)
    try:
        yield
    finally:
        unregister_controller("paced")


def test_plugin_visible_everywhere(paced_registered):
    assert "paced" in registered_frameworks()
    # The deprecated module-level tuples are registry-derived, so the
    # plugin shows up in all three without re-import.
    import repro
    import repro.experiments.artifact as artifact
    import repro.experiments.runner as runner

    assert "paced" in repro.FRAMEWORKS
    assert "paced" in artifact.FRAMEWORKS
    assert "paced" in runner.FRAMEWORKS


def test_plugin_runs_end_to_end_and_digests_deterministically(
    paced_registered,
):
    spec = RunSpec(
        "paced", small_config(), RunOverrides.from_params({"app_threads": 32})
    )
    twin = RunSpec(
        "paced", small_config(), RunOverrides.from_params({"app_threads": 32})
    )
    assert spec.digest() == twin.digest()
    art = execute_spec(spec)
    assert execute_spec(twin).signature() == art.signature()
    caps = art.actions.of_kind("soft_app_threads")
    assert caps and caps[0].value == 32  # the registered param actuated


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="in-test registration reaches pool workers only via fork",
)
def test_plugin_identical_on_process_backend(paced_registered):
    spec = RunSpec(
        "paced", small_config(), RunOverrides.from_params({"app_threads": 32})
    )
    serial = execute_spec(spec)
    filler = RunSpec("ec2", small_config())  # forces a real pool
    via_pool = ExperimentEngine(jobs=2, use_cache=False).run_many(
        [spec, filler]
    )[0]
    assert via_pool.signature() == serial.signature()


# ----------------------------------------------------------------------
# the CLI surface: ``repro controllers``
# ----------------------------------------------------------------------

def test_cli_controllers_table(capsys):
    from repro.cli import main

    assert main(["controllers"]) == 0
    out = capsys.readouterr().out
    for name in BUILTINS:
        assert name in out
    assert "headroom=1.15" in out


def test_cli_controllers_json_round_trips(capsys):
    from repro.cli import main

    assert main(["controllers", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    names = [c["name"] for c in payload["controllers"]]
    assert names == list(registered_frameworks())
    by_name = {c["name"]: c for c in payload["controllers"]}
    headroom = next(
        p for p in by_name["conscale"]["params"] if p["name"] == "headroom"
    )
    assert headroom == {
        "name": "headroom",
        "kind": "float",
        "default": 1.15,
        "help": "actuate this factor above the estimated Q_lower",
        "cli": True,
    }
    assert "qos_constraint" in by_name["qos"]["decision_kinds"]
