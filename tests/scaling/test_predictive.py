"""Tests for the predictive (proactive) autoscaling baseline."""

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import ScenarioConfig
from repro.ntier.request import Request
from repro.scaling.policy import TierPolicyConfig
from repro.scaling.predictive import PredictiveAutoScaling

from tests.scaling.test_actuator import bootstrap_all, make_stack


def ramp_db_load(sim, app, rate_per_sec, duration, demand=1000.0):
    """Admit `rate_per_sec` long-running requests per second to the DB,
    producing a linearly rising utilisation ramp."""
    server = app.tiers["db"].servers[0]
    count = int(rate_per_sec * duration)
    for i in range(count):
        t = i / rate_per_sec

        def admit(i=i):
            req = Request(10_000 + i, "X", sim.now, {"db": demand})
            server.admit(req, lambda r: server.work(r, demand, lambda x: None))

        sim.schedule(t, admit)


def test_predicted_cpu_extrapolates_trend():
    sim, app, actuator = make_stack(prep=15.0)
    bootstrap_all(sim, actuator)
    controller = PredictiveAutoScaling(
        sim, actuator.warehouse, actuator, {"db": TierPolicyConfig()},
        lead_time=20.0,
    )
    controller.stop()  # probe the predictor without acting
    # utilisation rises ~0.02/s (20 new permanent requests/s, a_sat 1000)
    ramp_db_load(sim, app, rate_per_sec=20, duration=30)
    sim.run(until=30.0)
    current = actuator.warehouse.tier_cpu("db", 5.0)
    predicted = controller.predicted_cpu("db")
    assert predicted > current + 0.2  # ~0.02/s * 20 s lead
    assert predicted == pytest.approx(current + 0.02 * 20.0, abs=0.1)


def test_predictive_scales_before_threshold():
    sim, app, actuator = make_stack(prep=15.0)
    bootstrap_all(sim, actuator)
    PredictiveAutoScaling(
        sim, actuator.warehouse, actuator, {"db": TierPolicyConfig()},
    )
    ramp_db_load(sim, app, rate_per_sec=20, duration=40)
    sim.run(until=40.0)
    outs = actuator.log.of_kind("scale_out_started")
    assert outs, "expected a proactive scale-out"
    t_first = outs[0].time
    # reactive crossing of 0.8 happens at ~40 s; proactive must fire
    # clearly earlier (armed from ~0.45, predicted crossing ~16 s ahead)
    assert t_first < 34.0, f"first scale-out at {t_first}s is not proactive"


def test_predictive_does_not_act_when_cold():
    sim, app, actuator = make_stack(prep=15.0)
    bootstrap_all(sim, actuator)
    PredictiveAutoScaling(
        sim, actuator.warehouse, actuator, {"db": TierPolicyConfig()},
    )
    # a steep *relative* trend at very low utilisation: 0 -> 0.2
    ramp_db_load(sim, app, rate_per_sec=10, duration=20)
    sim.run(until=20.0)
    assert not actuator.log.of_kind("scale_out_started")


def test_predictive_framework_via_runner():
    config = ScenarioConfig(
        name="pred", trace_name="big_spike", load_scale=100.0,
        duration=250.0, seed=11,
    )
    reactive = run_experiment("ec2", config)
    proactive = run_experiment("predictive", config)
    # the proactive controller must begin scaling earlier on the spike ramp
    t_reactive = [a.time for a in reactive.actions.of_kind("scale_out_started")]
    t_proactive = [a.time for a in proactive.actions.of_kind("scale_out_started")]
    assert t_proactive and t_reactive
    assert min(t_proactive) <= min(t_reactive)
    # and never performs catastrophically worse
    assert proactive.tail().p99 <= reactive.tail().p99 * 1.5
