"""Acceptance tests for the MPC-hybrid and QoS-robust baselines.

The issue's bar for the two new controllers: they run every one of the
six trace shapes deterministically (identical signatures on repeat and
across the serial and process backends, tie-order race check clean) and
they emit their registered advisory decision kinds — ``forecast`` /
``mpc_correction`` for MPC, ``qos_constraint`` for QoS — so their
reasoning is auditable through ``repro diff`` like every other
framework's.

Runs use the reduced scale of ``test_engine`` (load_scale 300, 60 s).
"""

from __future__ import annotations

import pytest

from repro.experiments.artifact import RunOverrides, RunSpec
from repro.experiments.engine import ExperimentEngine
from repro.experiments.racecheck import run_race_check
from repro.experiments.runner import execute_spec
from repro.workload import TRACE_NAMES
from tests.experiments.test_engine import small_config

#: Params that force the QoS chance constraint to actually breach at
#: test scale: a 20 ms objective with a 1 % tolerated violation rate.
TIGHT_QOS = {"slo_ms": 20.0, "epsilon": 0.01}


@pytest.fixture(scope="module")
def mpc_artifact():
    return execute_spec(RunSpec("mpc", small_config()))


@pytest.fixture(scope="module")
def qos_artifact():
    return execute_spec(
        RunSpec("qos", small_config(), RunOverrides.from_params(TIGHT_QOS))
    )


# ----------------------------------------------------------------------
# the controllers do their distinctive thing, auditable in the trace
# ----------------------------------------------------------------------

def test_mpc_emits_forecast_and_corrections(mpc_artifact):
    forecasts = mpc_artifact.actions.of_kind("forecast")
    corrections = mpc_artifact.actions.of_kind("mpc_correction")
    assert forecasts, "MPC never produced a workload forecast"
    assert corrections, "MPC never corrected a concurrency cap"
    # Forecasts carry the predicted throughput and the trend behind it.
    assert all(e.estimate is not None for e in forecasts)
    assert all("trend" in e.reason for e in forecasts)
    # Corrections justify the cap with the MVA model's throughput.
    assert all(e.value is not None and e.estimate is not None
               for e in corrections)


def test_mpc_corrections_actuate_soft_caps(mpc_artifact):
    soft = mpc_artifact.actions.of_kind(
        "soft_app_threads", "soft_db_connections"
    )
    assert soft, "MPC cap corrections never reached the actuator"
    assert all(e.value >= 1 for e in soft)


def test_qos_emits_chance_constraint_breaches(qos_artifact):
    breaches = qos_artifact.actions.of_kind("qos_constraint")
    assert breaches, "tight SLO produced no constraint-breach events"
    for e in breaches:
        assert 0.0 <= e.estimate <= 1.0  # a violation probability
        assert "P(RT>20ms)" in e.reason
    # Sustained breaches must translate into scale-ups or scale-outs.
    acted = qos_artifact.actions.of_kind(
        "scale_out_started", "scale_up_started"
    )
    assert acted, "sustained breaches never triggered scaling"


def test_qos_default_slo_mostly_quiet():
    relaxed = execute_spec(RunSpec("qos", small_config()))
    tight = execute_spec(
        RunSpec("qos", small_config(), RunOverrides.from_params(TIGHT_QOS))
    )
    n_relaxed = len(relaxed.actions.of_kind("qos_constraint"))
    n_tight = len(tight.actions.of_kind("qos_constraint"))
    assert n_tight > n_relaxed  # the SLO param is material, not cosmetic


# ----------------------------------------------------------------------
# determinism across repeats, backends, and tie orders
# ----------------------------------------------------------------------

@pytest.mark.parametrize("framework", ["mpc", "qos"])
def test_repeat_run_identical(framework, mpc_artifact, qos_artifact):
    base = mpc_artifact if framework == "mpc" else qos_artifact
    spec = base.spec
    assert execute_spec(spec).signature() == base.signature()


@pytest.mark.parametrize("framework", ["mpc", "qos"])
def test_identical_on_process_backend(framework, mpc_artifact, qos_artifact):
    base = mpc_artifact if framework == "mpc" else qos_artifact
    filler = RunSpec("ec2", small_config())  # forces a real pool
    via_pool = ExperimentEngine(jobs=2, use_cache=False).run_many(
        [base.spec, filler]
    )[0]
    assert via_pool.signature() == base.signature()


@pytest.mark.parametrize("framework", ["mpc", "qos"])
def test_all_six_trace_shapes_deterministic(framework):
    for trace in TRACE_NAMES:
        spec = RunSpec(framework, small_config(trace_name=trace))
        first = execute_spec(spec)
        assert execute_spec(spec).signature() == first.signature(), (
            f"{framework} non-deterministic on {trace}"
        )
        assert first.completed > 0


@pytest.mark.parametrize("framework", ["mpc", "qos"])
def test_race_check_clean(framework):
    params = TIGHT_QOS if framework == "qos" else None
    spec = RunSpec(
        framework, small_config(), RunOverrides.from_params(params)
    )
    report = run_race_check(spec)  # raises TieOrderRaceError on a race
    assert report.spec_digest == spec.digest()
    assert report.tie_batches > 0  # the permutation actually bit


# ----------------------------------------------------------------------
# head-to-head: the new baselines ride compare/resilience like the rest
# ----------------------------------------------------------------------

def test_compare_includes_new_baselines(capsys, tmp_path, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    assert main([
        "compare", "--trace", "dual_phase", "--scale", "300",
        "--duration", "60", "--seed", "2",
    ]) == 0
    out = capsys.readouterr().out
    for name in ("ec2", "dcm", "conscale", "predictive", "mpc", "qos"):
        assert name in out
