"""Tests for the threshold-based scaling policy."""

import pytest

from repro.errors import ConfigurationError
from repro.ntier.request import Request
from repro.scaling.policy import ThresholdPolicy, TierPolicyConfig

from tests.scaling.test_actuator import bootstrap_all, make_stack


def make_policy(sim, actuator, **cfg_kw):
    config = TierPolicyConfig(**cfg_kw)
    return ThresholdPolicy(
        sim, actuator.warehouse, actuator, {"db": config}
    )


def load_db(app, n, demand=1000.0):
    """Put n long-running requests directly on the db server."""
    server = app.tiers["db"].servers[0]
    for i in range(n):
        server.admit(
            Request(1000 + i, "X", 0.0, {"db": demand}),
            lambda r: server.work(r, demand, lambda x: server.release(x)),
        )


def test_config_validation():
    with pytest.raises(ConfigurationError):
        TierPolicyConfig(high_threshold=0.5, low_threshold=0.6)
    with pytest.raises(ConfigurationError):
        TierPolicyConfig(min_size=0)
    with pytest.raises(ConfigurationError):
        TierPolicyConfig(min_size=5, max_size=2)


def test_scale_out_on_high_cpu():
    sim, app, actuator = make_stack()
    bootstrap_all(sim, actuator)
    policy = make_policy(sim, actuator)
    # db server a_sat = 1000 -> 900 active requests = util 0.9
    load_db(app, 900)
    sim.run(until=6.0)  # let the warehouse collect samples
    assert policy.decide("db") == "out"


def test_no_scale_out_below_threshold():
    sim, app, actuator = make_stack()
    bootstrap_all(sim, actuator)
    policy = make_policy(sim, actuator)
    load_db(app, 500)  # util 0.5
    sim.run(until=6.0)
    assert policy.decide("db") is None


def test_out_cooldown_blocks_repeat():
    sim, app, actuator = make_stack()
    bootstrap_all(sim, actuator)
    policy = make_policy(sim, actuator, out_cooldown=20.0)
    load_db(app, 900)
    sim.run(until=6.0)
    assert policy.decide("db") == "out"
    policy.note_action("db", "out")
    sim.run(until=10.0)
    assert policy.decide("db") is None  # cooling down
    sim.run(until=27.0)
    assert policy.decide("db") == "out"


def test_no_action_while_in_flight():
    sim, app, actuator = make_stack(prep=15.0)
    bootstrap_all(sim, actuator)
    policy = make_policy(sim, actuator)
    load_db(app, 900)
    sim.run(until=6.0)
    actuator.scale_out("db")
    assert policy.decide("db") is None


def test_max_size_respected():
    sim, app, actuator = make_stack(prep=0.1)
    bootstrap_all(sim, actuator)
    policy = make_policy(sim, actuator, max_size=1)
    load_db(app, 900)
    sim.run(until=6.0)
    assert policy.decide("db") is None


def test_scale_in_requires_sustained_low():
    sim, app, actuator = make_stack(prep=0.1)
    bootstrap_all(sim, actuator)
    actuator.scale_out("db")
    sim.run(until=1.0)
    policy = make_policy(sim, actuator, in_sustain=10.0, in_cooldown=5.0)
    # idle db tier: low utilisation from the start
    for t in range(2, 9):
        sim.run(until=float(t))
        assert policy.decide("db") is None  # not sustained long enough
    sim.run(until=13.0)
    assert policy.decide("db") == "in"


def test_scale_in_never_below_min_size():
    sim, app, actuator = make_stack()
    bootstrap_all(sim, actuator)
    policy = make_policy(sim, actuator, in_sustain=1.0, in_cooldown=1.0)
    sim.run(until=10.0)
    assert policy.decide("db") is None  # size == min_size == 1


def test_pressure_triggers_scale_out_with_warm_cpu():
    """Hybrid threshold: deep admission queues + warm CPU scale out even
    when the CPU mean sits below the high threshold."""
    sim, app, actuator = make_stack(soft=None)
    bootstrap_all(sim, actuator)
    # cap db connections low, then swamp the conn pool queue
    actuator.set_db_connections(7)
    policy = make_policy(sim, actuator, pressure_ratio=0.5, pressure_cpu=0.6)
    pool = app.conn_pools["app-1"]
    for i in range(7 + 10):
        pool.acquire(object(), lambda tok: None)
    # make the db CPU warm (0.7): 700 active on a_sat=1000
    load_db(app, 700)
    sim.run(until=6.0)
    assert pool.queued >= 5
    assert policy.decide("db") == "out"


def test_note_action_validates_direction():
    sim, app, actuator = make_stack()
    bootstrap_all(sim, actuator)
    policy = make_policy(sim, actuator)
    with pytest.raises(ConfigurationError):
        policy.note_action("db", "sideways")
