"""Unit tests for ConScale's adaptation logic, driven by a scripted
estimator (no full simulation runs)."""

from repro.ntier.app import APP
from repro.scaling.conscale import ConScaleController
from repro.scaling.estimator import TierEstimate
from repro.sct.model import SCTEstimate

from tests.scaling.test_actuator import bootstrap_all, make_stack
from tests.scaling.test_policy import load_db


def estimate(optimal, *, saturated=True, hw=True, hot=None, q_upper=None):
    per = SCTEstimate(
        q_lower=optimal, q_upper=q_upper or optimal + 5, tp_max=100.0,
        optimal=optimal, ascending_observed=True,
        saturation_observed=saturated,
        plateau_util=0.95 if hw else 0.3, hardware_limited=hw,
        sla_met=True, n_tuples=100,
    )
    return TierEstimate(
        tier="?", time=0.0, optimal=optimal, q_upper=per.q_upper,
        saturation_observed=saturated, hardware_limited=hw and saturated,
        plateau_hot=hot if hot is not None else hw,
        per_server={"s-1": per},
    )


class ScriptedEstimator:
    def __init__(self, app_est=None, db_est=None):
        self.app_est = app_est
        self.db_est = db_est

    def estimate_tier(self, tier):
        return self.app_est if tier == APP else self.db_est


def make_controller(app_est=None, db_est=None, **kw):
    sim, app, actuator = make_stack()
    bootstrap_all(sim, actuator)
    controller = ConScaleController(
        sim, actuator.warehouse, actuator,
        estimator=ScriptedEstimator(app_est, db_est), **kw,
    )
    controller.stop()  # drive _adapt manually
    return sim, app, actuator, controller


def test_actionable_estimate_sets_headroom_target():
    sim, app, actuator, controller = make_controller(app_est=estimate(20))
    controller._adapt(force=True)
    assert actuator.factory.thread_limit(APP) == 23  # ceil(20*1.15)


def test_hysteresis_blocks_small_drift():
    sim, app, actuator, controller = make_controller(app_est=estimate(20))
    controller._adapt(force=True)
    # new estimate within 20% of current 23 -> no action without force
    controller.estimator.app_est = estimate(22)  # target 26, drift 13%
    controller._adapt(force=False)
    assert actuator.factory.thread_limit(APP) == 23
    controller._adapt(force=True)
    assert actuator.factory.thread_limit(APP) == 26


def test_clamps_apply():
    sim, app, actuator, controller = make_controller(
        app_est=estimate(1000), max_app_threads=100
    )
    controller._adapt(force=True)
    assert actuator.factory.thread_limit(APP) == 100


def test_db_target_scales_with_topology():
    sim, app, actuator, controller = make_controller(db_est=estimate(10))
    # 1 app, 1 db: per-app conns = ceil(ceil(10*1.15) * 1 / 1) = 12
    controller._adapt(force=True)
    assert actuator.db_connections == 12


def test_relax_when_cool_and_capped():
    sim, app, actuator, controller = make_controller(app_est=estimate(20))
    controller._adapt(force=True)
    assert actuator.factory.thread_limit(APP) == 23
    # estimator goes silent; tier is idle (cpu 0) -> relax toward 60
    controller.estimator.app_est = None
    sim.run(until=5.0)  # let the warehouse sample the cool tier
    controller._adapt(force=False)
    first = actuator.factory.thread_limit(APP)
    assert 23 < first <= 60
    controller._adapt(force=False)
    assert actuator.factory.thread_limit(APP) >= first


def test_no_relax_while_hot():
    sim, app, actuator, controller = make_controller(db_est=estimate(10))
    controller._adapt(force=True)
    assert actuator.db_connections == 12
    # keep the DB hot (util ~0.9 on the a_sat=1000 test server)
    load_db(app, 900)
    sim.run(until=12.0)
    controller.estimator.db_est = None
    controller._adapt(force=False)
    assert actuator.db_connections == 12  # cap held


def test_explore_up_on_pressure():
    sim, app, actuator, controller = make_controller(
        db_est=estimate(10, saturated=False, hot=True)
    )
    # force a tight cap first
    controller.estimator.db_est = estimate(10)
    controller._adapt(force=True)
    assert actuator.db_connections == 12
    # now: unsaturated-but-hot estimate + deep conn queue -> probe up
    controller.estimator.db_est = estimate(12, saturated=False, hot=True)
    pool = app.conn_pools["app-1"]
    for _ in range(20):
        pool.acquire(object(), lambda tok: None)
    assert pool.queued >= 0.25 * pool.limit
    controller._adapt(force=False)
    assert actuator.db_connections == 15  # ceil(12 * 1.25)


def test_no_explore_without_pressure():
    sim, app, actuator, controller = make_controller(
        db_est=estimate(10)
    )
    controller._adapt(force=True)
    # keep the DB hot so the relax path is blocked too; with no queue
    # the unsaturated-but-hot estimate must NOT probe upward
    load_db(app, 900)
    sim.run(until=12.0)
    controller.estimator.db_est = estimate(12, saturated=False, hot=True)
    controller._adapt(force=False)
    assert actuator.db_connections == 12  # no queue -> no probe


def test_contaminated_estimate_not_applied():
    sim, app, actuator, controller = make_controller(
        app_est=estimate(8, hw=False)
    )
    controller._adapt(force=True)
    assert actuator.factory.thread_limit(APP) == 60  # static default kept


def test_with_headroom_math():
    sim, app, actuator, controller = make_controller()
    assert controller._with_headroom(10) == 12
    assert controller._with_headroom(20) == 23
    assert controller._with_headroom(1) == 2
    controller.headroom = 1.0
    assert controller._with_headroom(10) == 10
