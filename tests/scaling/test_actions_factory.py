"""Tests for the action log and the server factory."""

import pytest

from repro.errors import ConfigurationError
from repro.scaling.actions import ActionLog
from repro.scaling.factory import ServerFactory
from repro.sim.engine import Simulator

from tests.conftest import simple_capacity


# ----------------------------------------------------------------------
# ActionLog
# ----------------------------------------------------------------------

def test_record_and_query():
    log = ActionLog()
    log.record(1.0, "scale_out_started", "db", detail="db-vm1")
    log.record(16.0, "scale_out_ready", "db", detail="db-2")
    log.record(20.0, "soft_db_connections", "app", value=12)
    assert len(log) == 3
    assert [a.kind for a in log.of_kind("scale_out_ready")] == ["scale_out_ready"]
    assert len(log.for_tier("db")) == 2
    assert log.scale_out_times("db") == [16.0]


def test_render_contains_values():
    log = ActionLog()
    log.record(2.5, "soft_app_threads", "app", value=30)
    text = ActionLog.render(log.all())
    assert "soft_app_threads" in text
    assert "30" in text


def test_iteration_order_is_insertion():
    log = ActionLog()
    for t in (3.0, 1.0, 2.0):  # log is append-only, keeps call order
        log.record(t, "x", "db")
    assert [a.time for a in log] == [3.0, 1.0, 2.0]


# ----------------------------------------------------------------------
# ServerFactory
# ----------------------------------------------------------------------

def test_factory_creates_numbered_servers():
    sim = Simulator()
    factory = ServerFactory(sim)
    factory.set_template("db", simple_capacity(), 40)
    a = factory.create("db")
    b = factory.create("db")
    assert (a.name, b.name) == ("db-1", "db-2")
    assert a.threads.limit == 40
    assert a.tier == "db"


def test_factory_requires_template():
    factory = ServerFactory(Simulator())
    with pytest.raises(ConfigurationError):
        factory.create("db")
    with pytest.raises(ConfigurationError):
        factory.thread_limit("db")


def test_factory_thread_limit_update():
    sim = Simulator()
    factory = ServerFactory(sim)
    factory.set_template("app", simple_capacity(), 60)
    factory.set_thread_limit("app", 25)
    assert factory.thread_limit("app") == 25
    assert factory.create("app").threads.limit == 25
    with pytest.raises(ConfigurationError):
        factory.set_thread_limit("app", 0)


def test_factory_validation():
    factory = ServerFactory(Simulator())
    with pytest.raises(ConfigurationError):
        factory.set_template("db", simple_capacity(), 0)


def test_template_replacement_affects_future_only():
    sim = Simulator()
    factory = ServerFactory(sim)
    factory.set_template("db", simple_capacity(a_sat=10), 40)
    before = factory.create("db")
    factory.set_template("db", simple_capacity(a_sat=20), 40)
    after = factory.create("db")
    assert before.capacity.saturation_concurrency == pytest.approx(10)
    assert after.capacity.saturation_concurrency == pytest.approx(20)
