"""Tests for the tier estimator and DCM's offline profiling."""

import pytest

from repro.errors import ConfigurationError
from repro.monitoring.warehouse import MetricWarehouse
from repro.ntier.capacity import CapacityModel, ContentionModel, Resource
from repro.ntier.request import Request
from repro.ntier.server import Server, ServerConfig
from repro.scaling.dcm import DcmTrainedProfile, offline_profile
from repro.scaling.estimator import OptimalConcurrencyEstimator
from repro.sct.model import SCTModel
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# offline profiling (DCM training)
# ----------------------------------------------------------------------

def capacity(a_sat=10.0, sigma=3e-3, kappa=2e-4):
    return CapacityModel(
        [Resource("cpu", 1.0, 1.0 / a_sat)], ContentionModel(sigma, kappa)
    )


def test_offline_profile_finds_knee():
    q = offline_profile(capacity(a_sat=10), mean_demand=0.01)
    assert 8 <= q <= 11


def test_offline_profile_scales_with_cores():
    q1 = offline_profile(capacity(a_sat=10), 0.01)
    q2 = offline_profile(capacity(a_sat=20), 0.01)
    assert q2 >= 1.7 * q1


def test_offline_profile_blocking_share_inflates_threads():
    q_leaf = offline_profile(capacity(a_sat=10), 0.01, blocking_share=0.0)
    q_blocked = offline_profile(capacity(a_sat=10), 0.01, blocking_share=0.5)
    assert q_blocked == pytest.approx(q_leaf * 2, abs=1)


def test_offline_profile_validation():
    with pytest.raises(ConfigurationError):
        offline_profile(capacity(), 0.0)
    with pytest.raises(ConfigurationError):
        offline_profile(capacity(), 0.01, blocking_share=1.0)


def test_trained_profile_validation():
    with pytest.raises(ConfigurationError):
        DcmTrainedProfile(app_optimal=0, db_optimal=10)
    profile = DcmTrainedProfile(app_optimal=30, db_optimal=10, trained_on="x")
    assert profile.trained_on == "x"


# ----------------------------------------------------------------------
# tier estimator over warehouse data
# ----------------------------------------------------------------------

def drive_server_through_levels(sim, server, levels, dwell, demand=0.01):
    """Closed-loop-ish load: keep `level` requests active in the server
    for `dwell` seconds each by refilling on completion."""
    state = {"target": 0, "next_id": 0}

    def refill(r=None):
        if r is not None:
            server.release(r)
        while server.admitted < state["target"]:
            req = Request(state["next_id"], "X", sim.now, {"db": demand})
            state["next_id"] += 1
            server.admit(req, lambda rr: server.work(rr, demand, refill))

    for i, level in enumerate(levels):
        def set_level(level=level):
            state["target"] = level
            refill()
        sim.schedule_after(i * dwell, set_level)


def test_estimator_on_live_server():
    sim = Simulator()
    wh = MetricWarehouse(sim, fine_interval=0.05)
    server = Server(
        sim, ServerConfig("db-1", "db", capacity(a_sat=10, kappa=1e-3), 10_000)
    )
    wh.register_server(server)
    est = OptimalConcurrencyEstimator(wh, SCTModel(min_samples=4), window=200.0)
    levels = [2, 4, 6, 8, 10, 12, 16, 20, 28, 40]
    drive_server_through_levels(sim, server, levels, dwell=3.0)
    sim.run(until=30.0)
    tier_est = est.estimate_tier("db")
    assert tier_est is not None
    assert tier_est.saturation_observed
    assert tier_est.hardware_limited
    assert 8 <= tier_est.optimal <= 13
    assert tier_est.actionable


def test_estimator_returns_none_without_servers():
    sim = Simulator()
    wh = MetricWarehouse(sim)
    est = OptimalConcurrencyEstimator(wh)
    assert est.estimate_tier("db") is None


def test_estimator_history():
    sim = Simulator()
    wh = MetricWarehouse(sim, fine_interval=0.05)
    server = Server(
        sim, ServerConfig("db-1", "db", capacity(a_sat=10, kappa=1e-3), 10_000)
    )
    wh.register_server(server)
    est = OptimalConcurrencyEstimator(wh, SCTModel(min_samples=4), window=200.0)
    drive_server_through_levels(sim, server, [2, 6, 10, 16, 28], dwell=3.0)
    sim.run(until=15.0)
    assert est.last("db") is None
    first = est.estimate_tier("db")
    assert est.last("db") is first
    assert est.history("db") == [first]


def test_estimator_window_validation():
    sim = Simulator()
    wh = MetricWarehouse(sim)
    with pytest.raises(Exception):
        OptimalConcurrencyEstimator(wh, window=0.0)


def test_drift_check_trims_stale_half():
    """When a server's capacity doubles mid-window, the drift-aware
    estimator must discard the pre-shift scatter and estimate the NEW
    optimum, while the naive estimator blends both halves."""
    sim = Simulator()
    wh = MetricWarehouse(sim, fine_interval=0.05)
    server = Server(
        sim, ServerConfig("db-1", "db", capacity(a_sat=10, kappa=1e-3), 10_000)
    )
    wh.register_server(server)
    est = OptimalConcurrencyEstimator(
        wh, SCTModel(min_samples=4), window=300.0,
        drift_check=True, drift_min_samples=40,
    )
    # one continuous level schedule; the capacity doubles at t=20, so
    # the second half of the schedule traces the 2x curve
    levels = [2, 4, 6, 8, 10, 12, 16, 20, 28, 40] + \
             [4, 8, 12, 16, 20, 24, 32, 44, 60]
    drive_server_through_levels(sim, server, levels, dwell=2.0)
    sim.schedule(
        20.0, lambda: server.set_capacity(server.capacity.scaled_cores("cpu", 2.0))
    )
    sim.run(until=40.0)
    tier_est = est.estimate_tier("db")
    assert est.drift_events >= 1
    assert tier_est is not None
    # the 2x optimum is ~20; a blended estimate would sit near 10
    assert tier_est.optimal >= 15, (
        f"estimate {tier_est.optimal} still dominated by stale scatter"
    )
