"""Tests for vertical scaling (scale-up) support."""

import pytest

from repro.errors import CloudError, ScalingError
from repro.ntier.request import Request

from tests.scaling.test_actuator import bootstrap_all, make_stack


def test_server_set_capacity_rerates_inflight_work():
    """A job halfway through doubles its speed when cores double."""
    from repro.ntier.capacity import CapacityModel, ContentionModel, Resource
    from repro.ntier.server import Server, ServerConfig
    from repro.sim.engine import Simulator

    sim = Simulator()
    # a_sat=1: a single job runs at rate 1
    one_core = CapacityModel([Resource("cpu", 1.0, 1.0)], ContentionModel())
    server = Server(sim, ServerConfig("db-1", "db", one_core, 10))
    done_at = []
    # two active jobs with demand 2.0 each: PS rate 0.5/job
    for i in range(2):
        server.admit(
            Request(i, "X", 0.0, {"db": 2.0}),
            lambda r: server.work(r, 2.0, lambda x: done_at.append(sim.now)),
        )
    # at t=2 each job has 1.0 work left at rate 0.5 (finish at t=4);
    # doubling cores doubles the PS rate -> finish at t=3
    sim.schedule(2.0, lambda: server.set_capacity(one_core.scaled_cores("cpu", 2.0)))
    sim.run()
    assert done_at == [pytest.approx(3.0), pytest.approx(3.0)]


def test_hypervisor_resize_requires_running():
    from repro.cloud.hypervisor import Hypervisor
    from repro.sim.engine import Simulator

    sim = Simulator()
    hv = Hypervisor(sim, prep_period=10.0)
    vm = hv.launch("db", lambda v: None)
    with pytest.raises(CloudError):
        hv.resize(vm, 2.0, lambda v: None)
    sim.run(until=11.0)
    resized = []
    hv.resize(vm, 2.0, resized.append)
    sim.run(until=14.0)
    assert resized == [vm]
    assert vm.vcpus == 2.0
    with pytest.raises(CloudError):
        hv.resize(vm, 0.0, lambda v: None)


def test_actuator_scale_up_doubles_capacity():
    sim, app, actuator = make_stack(prep=0.0)
    bootstrap_all(sim, actuator)
    server = app.tiers["db"].servers[0]
    before = server.capacity.saturation_concurrency
    assert actuator.scale_up("db", factor=2.0) is True
    sim.run(until=5.0)
    assert server.capacity.saturation_concurrency == pytest.approx(2 * before)
    kinds = [a.kind for a in actuator.log if "scale_up" in a.kind]
    assert kinds == ["scale_up_started", "scale_up_done"]


def test_actuator_scale_up_respects_cap():
    sim, app, actuator = make_stack(prep=0.0)
    bootstrap_all(sim, actuator)
    assert actuator.scale_up("db", factor=2.0, max_vcpus=2.0) is True
    sim.run(until=5.0)
    # at the cap now: further scale-up refused
    assert actuator.scale_up("db", factor=2.0, max_vcpus=2.0) is False


def test_actuator_scale_up_validation():
    sim, app, actuator = make_stack(prep=0.0)
    bootstrap_all(sim, actuator)
    with pytest.raises(ScalingError):
        actuator.scale_up("db", factor=1.0)


def test_scale_up_notifies_and_resets_history():
    sim, app, actuator = make_stack(prep=0.0)
    bootstrap_all(sim, actuator)
    sim.run(until=3.0)  # accumulate some fine samples
    server_name = app.tiers["db"].servers[0].name
    assert actuator.warehouse.fine_samples(server_name, window=10.0)
    events = []
    actuator.on_hardware_change(lambda tier, kind: events.append(kind))
    actuator.scale_up("db")
    sim.run(until=6.0)
    assert "scale_up_done" in events
    # history dropped at the resize instant; only post-resize samples remain
    samples = actuator.warehouse.fine_samples(server_name, window=10.0)
    assert all(s.t_end >= 5.0 for s in samples)


def test_vertical_first_controller_prefers_scale_up():
    from repro.scaling.ec2 import EC2AutoScaling
    from repro.scaling.policy import TierPolicyConfig
    from tests.scaling.test_policy import load_db

    sim, app, actuator = make_stack(prep=0.0)
    bootstrap_all(sim, actuator)
    config = TierPolicyConfig(
        prefer_vertical=True, max_vcpus=2.0, out_cooldown=5.0
    )
    EC2AutoScaling(sim, actuator.warehouse, actuator, {"db": config})
    load_db(app, 900)  # util 0.9 on the a_sat=1000 test server
    sim.run(until=10.0)
    ups = actuator.log.of_kind("scale_up_done")
    assert ups, "expected a vertical scale-up first"
    assert not actuator.log.of_kind("scale_out_started")
    # once at the vCPU cap, the next breach adds a VM instead
    load_db(app, 1200)
    sim.run(until=25.0)
    assert actuator.log.of_kind("scale_out_started")
