"""Tests for the scaling actuator."""

import pytest

from repro.cloud.hypervisor import Hypervisor
from repro.errors import ScalingError
from repro.monitoring.warehouse import MetricWarehouse
from repro.ntier.app import APP, DB, WEB, NTierApplication, SoftResourceAllocation
from repro.ntier.request import Request
from repro.scaling.actions import ActionLog
from repro.scaling.actuator import Actuator
from repro.scaling.factory import ServerFactory
from repro.sim.engine import Simulator

from tests.conftest import simple_capacity


def make_stack(prep=15.0, soft=None):
    sim = Simulator()
    soft = soft or SoftResourceAllocation(100, 60, 40)
    app = NTierApplication(sim, soft)
    factory = ServerFactory(sim)
    for tier in (WEB, APP, DB):
        factory.set_template(tier, simple_capacity(1000), soft.for_tier(tier))
    hv = Hypervisor(sim, prep_period=prep)
    wh = MetricWarehouse(sim)
    actuator = Actuator(sim, app, hv, factory, wh, ActionLog())
    return sim, app, actuator


def bootstrap_all(sim, actuator, topology=(1, 1, 1)):
    for tier, n in zip((WEB, APP, DB), topology):
        actuator.bootstrap(tier, n)
    sim.run(until=0.0)


def test_bootstrap_builds_topology_immediately():
    sim, app, actuator = make_stack()
    bootstrap_all(sim, actuator, (1, 2, 1))
    assert app.topology() == (1, 2, 1)
    assert set(app.conn_pools) == {"app-1", "app-2"}
    # bootstrap events are distinguishable from scale-outs
    kinds = {a.kind for a in actuator.log}
    assert kinds == {"bootstrap_ready"}


def test_scale_out_waits_prep_period():
    sim, app, actuator = make_stack(prep=15.0)
    bootstrap_all(sim, actuator)
    actuator.scale_out(DB)
    assert actuator.action_in_flight(DB)
    sim.run(until=14.9)
    assert app.topology() == (1, 1, 1)
    sim.run(until=15.1)
    assert app.topology() == (1, 1, 2)
    assert not actuator.action_in_flight(DB)
    assert actuator.log.scale_out_times(DB) == [pytest.approx(15.0)]


def test_scale_out_notifies_listeners():
    sim, app, actuator = make_stack(prep=1.0)
    bootstrap_all(sim, actuator)
    events = []
    actuator.on_hardware_change(lambda tier, kind: events.append((tier, kind)))
    actuator.scale_out(APP)
    sim.run(until=2.0)
    assert events == [(APP, "scale_out_ready")]


def test_new_app_server_gets_current_db_connections():
    sim, app, actuator = make_stack(prep=1.0)
    bootstrap_all(sim, actuator)
    actuator.set_db_connections(12)
    actuator.scale_out(APP)
    sim.run(until=2.0)
    assert app.conn_pools["app-2"].limit == 12


def test_scale_in_drains_then_stops():
    sim, app, actuator = make_stack(prep=0.5)
    bootstrap_all(sim, actuator, (1, 2, 1))
    # occupy app-2 so the drain has to wait
    server = app.tiers[APP].servers[1]
    req = Request(0, "X", 0.0, {"app": 1.0})
    server.admit(req, lambda r: None)
    actuator.scale_in(APP)
    assert app.topology() == (1, 1, 1)  # removed from routing at once
    sim.run(until=3.0)
    assert actuator.action_in_flight(APP)  # still draining
    server.release(req)
    sim.run(until=5.0)
    assert not actuator.action_in_flight(APP)
    assert "app-2" not in app.conn_pools
    kinds = [a.kind for a in actuator.log.for_tier(APP)]
    assert kinds[-1] == "scale_in_done"


def test_soft_resizes_hit_live_servers_and_templates():
    sim, app, actuator = make_stack()
    bootstrap_all(sim, actuator, (1, 2, 1))
    actuator.set_app_threads(25)
    for server in app.tiers[APP].servers:
        assert server.threads.limit == 25
    assert actuator.factory.thread_limit(APP) == 25
    actuator.set_db_connections(9)
    assert all(p.limit == 9 for p in app.conn_pools.values())
    assert actuator.db_connections == 9
    actuator.set_web_threads(500)
    assert app.tiers[WEB].servers[0].threads.limit == 500


def test_soft_resize_noop_not_logged():
    sim, app, actuator = make_stack()
    bootstrap_all(sim, actuator)
    n_before = len(actuator.log)
    actuator.set_db_connections(actuator.db_connections)
    actuator.set_app_threads(actuator.factory.thread_limit(APP))
    assert len(actuator.log) == n_before


def test_soft_resize_validation():
    sim, app, actuator = make_stack()
    bootstrap_all(sim, actuator)
    with pytest.raises(ScalingError):
        actuator.set_db_connections(0)
    with pytest.raises(ScalingError):
        actuator.set_app_threads(0)


def test_soft_actions_logged():
    sim, app, actuator = make_stack()
    bootstrap_all(sim, actuator)
    actuator.set_app_threads(30)
    actuator.set_db_connections(10)
    kinds = [a.kind for a in actuator.log if a.kind.startswith("soft")]
    assert kinds == ["soft_app_threads", "soft_db_connections"]
    values = [a.value for a in actuator.log if a.kind.startswith("soft")]
    assert values == [30, 10]
