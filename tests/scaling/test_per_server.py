"""Tests for per-server soft-resource actuation (heterogeneous fleets)."""

import pytest

from repro.errors import ScalingError
from repro.ntier.app import APP
from repro.scaling.conscale import ConScaleController
from repro.scaling.estimator import TierEstimate
from repro.sct.model import SCTEstimate

from tests.scaling.test_actuator import bootstrap_all, make_stack


def make_server_estimate(optimal, saturated=True, hw=True):
    return SCTEstimate(
        q_lower=optimal, q_upper=optimal + 5, tp_max=100.0, optimal=optimal,
        ascending_observed=True, saturation_observed=saturated,
        plateau_util=0.95 if hw else 0.3, hardware_limited=hw,
        sla_met=True, n_tuples=100,
    )


class FakeEstimator:
    """Returns a scripted TierEstimate per tier."""

    def __init__(self, by_tier):
        self.by_tier = by_tier

    def estimate_tier(self, tier):
        return self.by_tier.get(tier)


def make_tier_estimate(tier, per_server):
    optima = [e.optimal for e in per_server.values()]
    actionable = any(
        e.saturation_observed and e.hardware_limited for e in per_server.values()
    )
    return TierEstimate(
        tier=tier, time=0.0,
        optimal=int(sorted(optima)[len(optima) // 2]),
        q_upper=max(e.q_upper for e in per_server.values()),
        saturation_observed=actionable,
        hardware_limited=actionable,
        plateau_hot=actionable,
        per_server=per_server,
    )


# ----------------------------------------------------------------------
# actuator-level
# ----------------------------------------------------------------------

def test_set_app_threads_for_targets_one_server():
    sim, app, actuator = make_stack()
    bootstrap_all(sim, actuator, (1, 2, 1))
    actuator.set_app_threads_for("app-2", 25)
    servers = {s.name: s.threads.limit for s in app.tiers[APP].servers}
    assert servers == {"app-1": 60, "app-2": 25}
    # template default untouched
    assert actuator.factory.thread_limit(APP) == 60


def test_set_app_threads_for_unknown_server():
    sim, app, actuator = make_stack()
    bootstrap_all(sim, actuator)
    with pytest.raises(ScalingError):
        actuator.set_app_threads_for("app-9", 25)
    with pytest.raises(ScalingError):
        actuator.set_app_threads_for("app-1", 0)


def test_set_app_threads_for_noop_not_logged():
    sim, app, actuator = make_stack()
    bootstrap_all(sim, actuator)
    n = len(actuator.log)
    actuator.set_app_threads_for("app-1", 60)  # already 60
    assert len(actuator.log) == n


# ----------------------------------------------------------------------
# controller-level
# ----------------------------------------------------------------------

def test_conscale_per_server_actuation():
    sim, app, actuator = make_stack()
    bootstrap_all(sim, actuator, (1, 2, 1))
    per_server = {
        "app-1": make_server_estimate(20),
        "app-2": make_server_estimate(40),  # e.g. scaled-up instance
    }
    controller = ConScaleController(
        sim, actuator.warehouse, actuator,
        estimator=FakeEstimator({APP: make_tier_estimate(APP, per_server)}),
        per_server_app=True,
    )
    controller._adapt(force=True)
    limits = {s.name: s.threads.limit for s in app.tiers[APP].servers}
    assert limits["app-1"] == 23  # ceil(20 * 1.15)
    assert limits["app-2"] == 46  # ceil(40 * 1.15)


def test_per_server_skips_non_actionable_servers():
    sim, app, actuator = make_stack()
    bootstrap_all(sim, actuator, (1, 2, 1))
    per_server = {
        "app-1": make_server_estimate(20),
        "app-2": make_server_estimate(10, saturated=False),  # unsaturated
    }
    controller = ConScaleController(
        sim, actuator.warehouse, actuator,
        estimator=FakeEstimator({APP: make_tier_estimate(APP, per_server)}),
        per_server_app=True,
    )
    controller._adapt(force=True)
    limits = {s.name: s.threads.limit for s in app.tiers[APP].servers}
    assert limits["app-1"] == 23
    assert limits["app-2"] == 60  # untouched static default


def test_per_server_disabled_uses_uniform_path():
    sim, app, actuator = make_stack()
    bootstrap_all(sim, actuator, (1, 2, 1))
    per_server = {
        "app-1": make_server_estimate(20),
        "app-2": make_server_estimate(40),
    }
    controller = ConScaleController(
        sim, actuator.warehouse, actuator,
        estimator=FakeEstimator({APP: make_tier_estimate(APP, per_server)}),
        per_server_app=False,
    )
    controller._adapt(force=True)
    limits = {s.threads.limit for s in app.tiers[APP].servers}
    assert len(limits) == 1  # uniform actuation
