"""Every controller's decisions flow through the control bus.

A synthetic CPU signal (burst, then idle) drives all four frameworks
through the full decision lifecycle — threshold trip, scale-out,
sustained-low scale-in with drain completion, and explicit no-op ticks —
and the recorded :class:`DecisionTrace` must account for each step with
a source and a reason. Soft-resource cap changes (with the estimate
that justified them) are asserted for the frameworks that make them.
"""

import pytest

from repro.cloud.hypervisor import Hypervisor
from repro.control.events import NOOP, THRESHOLD_TRIP
from repro.monitoring.warehouse import MetricWarehouse
from repro.ntier.app import APP, DB, WEB, NTierApplication, SoftResourceAllocation
from repro.scaling.actuator import Actuator
from repro.scaling.conscale import ConScaleController
from repro.scaling.dcm import DCMController, DcmTrainedProfile
from repro.scaling.ec2 import EC2AutoScaling
from repro.scaling.factory import ServerFactory
from repro.scaling.policy import TierPolicyConfig
from repro.scaling.predictive import PredictiveAutoScaling
from repro.sim.engine import Simulator

from tests.conftest import simple_capacity


def fast_configs():
    config = TierPolicyConfig(
        out_window=2.0, out_cooldown=2.0, in_sustain=3.0, in_cooldown=2.0,
        max_size=3,
    )
    return {APP: config, DB: config}


CONTROLLERS = {
    "ec2": lambda sim, wh, act: EC2AutoScaling(sim, wh, act, fast_configs()),
    "predictive": lambda sim, wh, act: PredictiveAutoScaling(
        sim, wh, act, fast_configs()
    ),
    "dcm": lambda sim, wh, act: DCMController(
        sim, wh, act, DcmTrainedProfile(app_optimal=20, db_optimal=8),
        fast_configs(),
    ),
    "conscale": lambda sim, wh, act: ConScaleController(
        sim, wh, act, None, fast_configs()
    ),
}


def run_lifecycle(framework: str, high_until: float = 8.0, until: float = 30.0):
    """Burst-then-idle run of one controller; returns its trace."""
    sim = Simulator()
    soft = SoftResourceAllocation(100, 60, 40)
    app = NTierApplication(sim, soft)
    factory = ServerFactory(sim)
    for tier in (WEB, APP, DB):
        factory.set_template(tier, simple_capacity(1000), soft.for_tier(tier))
    # 1.5 s prep: provisioning genuinely spans a decision tick, so the
    # in-flight guard is observable. (With a prep that lands exactly on
    # a tick instant, the completion — a model-priority event — settles
    # before the controller's same-instant tick reads the state.)
    hypervisor = Hypervisor(sim, prep_period=1.5)
    warehouse = MetricWarehouse(sim)
    actuator = Actuator(sim, app, hypervisor, factory, warehouse)
    for tier in (WEB, APP, DB):
        actuator.bootstrap(tier, 1)
    # Synthetic smoothed-CPU signal: saturated during the burst, idle
    # afterwards. Replaces the warehouse aggregation only — collection,
    # registration, and fine-grained monitoring stay live.
    warehouse.tier_cpu = lambda tier, window=10.0: (
        0.95 if sim.now <= high_until else 0.05
    )
    controller = CONTROLLERS[framework](sim, warehouse, actuator)
    sim.run(until=until)
    controller.stop()
    return controller, actuator.log


@pytest.mark.parametrize("framework", sorted(CONTROLLERS))
def test_full_lifecycle_is_traced(framework):
    controller, trace = run_lifecycle(framework)

    trips_out = [e for e in trace.of_kind(THRESHOLD_TRIP) if e.detail == "out"]
    assert trips_out, "burst must trip the scale-out threshold"
    assert all(e.source == controller.name for e in trips_out)
    assert all(e.reason for e in trips_out)

    started = trace.of_kind("scale_out_started")
    assert started and all(e.source == "actuator" for e in started)
    # the policy's reason rides along into the actuator event
    assert any("threshold" in e.reason or "predicted" in e.reason
               for e in started)
    assert trace.of_kind("scale_out_ready")

    trips_in = [e for e in trace.of_kind(THRESHOLD_TRIP) if e.detail == "in"]
    assert trips_in, "idle stretch must trip the scale-in threshold"
    assert all("sustained-low" in e.reason for e in trips_in)
    assert trace.of_kind("scale_in_started")
    done = trace.of_kind("scale_in_done")
    assert done and all(e.reason == "drain complete" for e in done)

    noops = trace.noops()
    assert noops, "do-nothing ticks must be recorded explicitly"
    assert all(e.reason for e in noops)
    assert all(e.source == controller.name for e in noops)
    # the in-flight guard produces its own distinct no-op reason
    assert any("in flight" in e.reason for e in noops)

    # events arrive in time order (synchronous bus inside the simulator)
    times = [e.time for e in trace]
    assert times == sorted(times)


def test_dcm_cap_changes_carry_reason_and_estimate():
    _, trace = run_lifecycle("dcm")
    app_caps = trace.of_kind("soft_app_threads")
    conn_caps = trace.of_kind("soft_db_connections")
    assert app_caps and conn_caps
    assert all("trained table" in e.reason for e in app_caps + conn_caps)
    assert all(e.estimate is not None for e in app_caps + conn_caps)
    assert app_caps[0].value == 20


def test_ec2_never_emits_soft_events():
    _, trace = run_lifecycle("ec2")
    assert not trace.of_kind(
        "soft_app_threads", "soft_db_connections", "soft_web_threads"
    )


def test_trace_rides_the_artifact():
    """End-to-end: a real run's artifact carries the bus-recorded trace,
    and ConScale's SCT-justified cap changes include the estimate."""
    from repro.experiments.runner import run_experiment
    from repro.experiments.scenarios import ScenarioConfig

    config = ScenarioConfig(
        name="events-test", trace_name="dual_phase", load_scale=100.0,
        duration=200.0, seed=11,
    )
    artifact = run_experiment("conscale", config)
    trace = artifact.actions
    assert trace.noops(), "artifact trace must include no-op ticks"
    sct_caps = [
        e for e in trace.of_kind("soft_db_connections", "soft_app_threads")
        if "SCT" in e.reason
    ]
    assert sct_caps, "ConScale must justify cap changes with SCT estimates"
    assert all(e.estimate is not None for e in sct_caps)
    sources = {e.source for e in trace}
    assert "actuator" in sources and "conscale" in sources
