"""Recovery-aware control: the FaultAwareMixin feedback loop.

Two layers of coverage:

* unit — the mixin driven directly with synthetic fault events against
  stub collaborators: scale-in veto lifecycle (prov episode, crash
  holdoff with its lapse, settle window), immediate vs deferred
  pre-warm, expedited retries on heal;
* integration — an ``az-outage`` storyline at the reduced test scale:
  the aware run emits the recovery vocabulary and restores the ejected
  replica strictly sooner than the ``fault_aware=false`` ablation,
  with both runs byte-reproducible.
"""

from __future__ import annotations

import pytest

from repro.control.events import (
    PREWARM_ISSUED,
    RECOVERY_KINDS,
    SCALEIN_SUSPENDED,
    DecisionEvent,
)
from repro.experiments.artifact import RunOverrides, RunSpec
from repro.experiments.runner import execute_spec
from repro.experiments.resilience import resilience_scenario
from repro.faults.storyline import parse_storyline
from repro.scaling.faultaware import (
    CRASH_HOLDOFF_MAX,
    SETTLE_WINDOW,
    FaultAwareMixin,
)
from repro.scaling.registry import get_controller


# ----------------------------------------------------------------------
# unit layer: the mixin against stub collaborators
# ----------------------------------------------------------------------

class _FakeSim:
    def __init__(self):
        self.now = 0.0


class _FakeBus:
    def __init__(self):
        self.subscriptions = []

    def subscribe(self, event_type, handler):
        self.subscriptions.append((event_type, handler))


class _FakeApp:
    tiers = ("web", "app", "db")


class _FakeActuator:
    def __init__(self):
        self.app = _FakeApp()
        self.launches = []
        self.expedited = []
        self.in_flight = set()

    def action_in_flight(self, tier):
        return tier in self.in_flight

    def scale_out(self, tier, reason=""):
        self.launches.append((tier, reason))

    def expedite_retries(self, tier):
        self.expedited.append(tier)
        return 0


class _FakePolicy:
    configs = {"app": None, "db": None}


class _Harness(FaultAwareMixin):
    def __init__(self):
        self.sim = _FakeSim()
        self.bus = _FakeBus()
        self.actuator = _FakeActuator()
        self.policy = _FakePolicy()
        self.emitted = []

    def emit(self, kind, tier, value=None, detail="", reason="",
             estimate=None):
        self.emitted.append((kind, tier, detail, reason))


def _event(kind, tier, detail="", reason=""):
    return DecisionEvent(
        time=0.0, kind=kind, tier=tier, detail=detail, reason=reason
    )


@pytest.fixture()
def harness():
    h = _Harness()
    h.enable_fault_awareness()
    return h


def test_mixin_is_inert_until_enabled():
    h = _Harness()
    assert not h.fault_aware
    assert h.scalein_blocked("db", 0.0) is None
    assert h.bus.subscriptions == []
    h.enable_fault_awareness()
    assert h.fault_aware
    assert len(h.bus.subscriptions) == 1
    h.enable_fault_awareness()  # idempotent
    assert len(h.bus.subscriptions) == 1


def test_prov_episode_suspends_scalein_until_settle_expires(harness):
    inject = _event("fault_injected", "*", reason="prov:*:fail@24+6: x")
    harness._on_fault_event(inject)
    assert harness.scalein_blocked("db", 1.0) == (
        "provisioning-fault episode open"
    )
    # Arming is announced per controlled tier.
    armed = [e for e in harness.emitted if e[0] == SCALEIN_SUSPENDED]
    assert {e[1] for e in armed} == {"app", "db"}
    harness.sim.now = 30.0
    harness._on_fault_event(
        _event("fault_recovered", "*", reason="prov:*:fail@24+6: healed")
    )
    # Heal expedites backoff retries on every tier and opens a settle
    # window: destructive actions stay vetoed for SETTLE_WINDOW more.
    assert harness.actuator.expedited == ["web", "app", "db"]
    assert "settle window" in harness.scalein_blocked("db", 31.0)
    assert harness.scalein_blocked("db", 30.0 + SETTLE_WINDOW) is None


def test_ejection_prewarms_and_holds_until_replacement_ready(harness):
    harness.sim.now = 24.6
    harness._on_fault_event(_event("server_ejected", "db", detail="db-1"))
    assert harness.actuator.launches == [
        ("db", "prewarm replacement for db-1")
    ]
    assert [e[0] for e in harness.emitted] == [
        SCALEIN_SUSPENDED, PREWARM_ISSUED,
    ]
    assert harness.scalein_blocked("db", 30.0) == (
        "crash replacement still pending"
    )
    harness.sim.now = 40.0
    harness._on_fault_event(_event("scale_out_ready", "db", detail="db-3"))
    assert "settle window" in harness.scalein_blocked("db", 41.0)
    assert harness.scalein_blocked("db", 40.0 + SETTLE_WINDOW) is None


def test_crash_holdoff_lapses_rather_than_pinning_forever(harness):
    harness.sim.now = 10.0
    harness.actuator.in_flight.add("db")  # draining: no double-provision
    harness._on_fault_event(_event("server_ejected", "db", detail="db-1"))
    assert harness.actuator.launches == []
    assert harness.scalein_blocked("db", 10.0 + CRASH_HOLDOFF_MAX) is not None
    assert harness.scalein_blocked("db", 11.0 + CRASH_HOLDOFF_MAX) is None


def test_prewarm_deferred_while_provisioning_episode_open(harness):
    harness._on_fault_event(
        _event("fault_injected", "*", reason="prov:*:fail@24+6: x")
    )
    harness.sim.now = 24.6
    harness._on_fault_event(_event("server_ejected", "db", detail="db-1"))
    # Launching now would be doomed at start time — nothing fired yet.
    assert harness.actuator.launches == []
    harness.sim.now = 30.0
    harness._on_fault_event(
        _event("fault_recovered", "*", reason="prov:*:fail@24+6: healed")
    )
    assert harness.actuator.launches == [
        ("db", "prewarm replacement for db-1")
    ]
    deferred = [e for e in harness.emitted if e[0] == PREWARM_ISSUED]
    assert deferred == [
        (PREWARM_ISSUED, "db", "db-1", "deferred until provisioning healed")
    ]


# ----------------------------------------------------------------------
# integration layer: az-outage at test scale, aware vs blind
# ----------------------------------------------------------------------

def _config():
    return resilience_scenario(
        load_scale=300.0, duration=60.0, seed=2, trace_name="dual_phase"
    )


def _plan():
    return parse_storyline("az-outage:db:24:12", run_duration=60.0, seed=2)


@pytest.fixture(scope="module")
def aware():
    return execute_spec(RunSpec("conscale", _config(), faults=_plan()))


@pytest.fixture(scope="module")
def blind():
    ablation = RunOverrides(controller_params=(("fault_aware", False),))
    return execute_spec(
        RunSpec("conscale", _config(), overrides=ablation, faults=_plan())
    )


def test_registry_declares_the_ablation_switch():
    spec = get_controller("conscale")
    param = spec.param("fault_aware")
    assert param.kind == "bool" and param.default is True


def test_aware_run_speaks_the_recovery_vocabulary(aware, blind):
    kinds = {e.kind for e in aware.actions.all()}
    assert set(RECOVERY_KINDS) <= kinds
    blind_kinds = {e.kind for e in blind.actions.all()}
    assert blind_kinds.isdisjoint(RECOVERY_KINDS)


def test_prewarm_waits_out_the_provisioning_fault(aware):
    # The deferral means the aware run never launches a doomed VM:
    # no provisioning failures at all, and the pre-warm is stamped
    # with the deferred reason at the heal instant.
    assert aware.actions.of_kind("scale_out_failed") == []
    (prewarm,) = aware.actions.of_kind(PREWARM_ISSUED)
    assert prewarm.reason == "deferred until provisioning healed"
    heal = next(
        e for e in aware.actions.of_kind("fault_recovered")
        if "prov" in e.reason
    )
    assert prewarm.time == heal.time


def test_aware_restores_capacity_strictly_sooner(aware, blind):
    a, b = aware.resilience, blind.resilience
    assert a.restore_s < b.restore_s
    # Same incident on both sides — the gap is pure control policy.
    assert [ep.kind for ep in a.episodes] == [ep.kind for ep in b.episodes]


def test_aware_run_reproducible(aware):
    again = execute_spec(RunSpec("conscale", _config(), faults=_plan()))
    assert again.signature() == aware.signature()
