"""The whole-program layer: call graph, dataflow, constant resolution."""

import ast
import os
import textwrap

import pytest

from repro.errors import LintError
from repro.lintpass.project import ClassInfo, ProjectIndex


@pytest.fixture()
def tree(tmp_path):
    """A three-module package exercising aliases, inheritance, helpers."""
    pkg = tmp_path / "repro"
    (pkg / "control").mkdir(parents=True)
    (pkg / "scaling").mkdir(parents=True)
    (pkg / "control" / "events.py").write_text(textwrap.dedent("""\
        SCALE_OUT = "scale_out"
        SCALE_IN = "scale_in"
        MODE_KINDS = (SCALE_OUT, SCALE_IN)
        ENTERED, LEFT = MODE_KINDS
    """))
    (pkg / "scaling" / "base.py").write_text(textwrap.dedent("""\
        from repro.control.events import SCALE_OUT


        class BaseController:
            def emit(self, kind: str) -> None:
                self.sink.append(kind)

            def tick(self) -> None:
                self.emit(SCALE_OUT)
    """))
    (pkg / "scaling" / "impl.py").write_text(textwrap.dedent("""\
        from repro.scaling.base import BaseController


        class FancyController(BaseController):
            def step(self, fast: bool) -> None:
                kind = "fast_path" if fast else "slow_path"
                self.emit(kind)


        def build() -> FancyController:
            return FancyController()
    """))
    return ProjectIndex.build([str(tmp_path)])


def find_call(index, module_suffix, callee_attr):
    for file in index.files:
        if not file.module.endswith(module_suffix):
            continue
        for node in ast.walk(file.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == callee_attr
            ):
                return file, node
    raise AssertionError(f"no {callee_attr} call in {module_suffix}")


def test_functions_are_keyed_by_qualname(tree):
    names = set(tree.functions)
    assert "repro.scaling.base.BaseController.emit" in names
    assert "repro.scaling.impl.FancyController.step" in names
    assert "repro.scaling.impl.build" in names


def test_resolve_call_follows_the_class_chain(tree):
    # self.emit inside FancyController.step resolves to the method the
    # *base* class provides.
    file, call = find_call(tree, "scaling.impl", "emit")
    enclosing = tree.enclosing_function(file, call)
    assert enclosing is not None and enclosing.cls == "FancyController"
    target = tree.resolve_call(file, enclosing, call)
    assert target is not None
    assert target.qualname == "repro.scaling.base.BaseController.emit"


def test_resolve_call_constructor_returns_class_info(tree):
    for file in tree.files:
        if file.module.endswith("scaling.impl"):
            break
    ctor = next(
        node for node in ast.walk(file.tree)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
        and node.func.id == "FancyController"
    )
    enclosing = tree.enclosing_function(file, ctor)
    target = tree.resolve_call(file, enclosing, ctor)
    assert isinstance(target, ClassInfo)
    assert target.name == "FancyController"


def test_callers_index_records_both_emit_sites(tree):
    sites = tree.callers().get("repro.scaling.base.BaseController.emit", [])
    caller_names = sorted(
        func.qualname for _, func, _ in sites if func is not None
    )
    assert caller_names == [
        "repro.scaling.base.BaseController.tick",
        "repro.scaling.impl.FancyController.step",
    ]


def test_module_constants_resolve_tuples_and_unpacking(tree):
    constants = tree.module_constants("repro.control.events")
    assert constants["SCALE_OUT"] == "scale_out"
    assert constants["MODE_KINDS"] == ("scale_out", "scale_in")
    # Tuple-unpack: ENTERED, LEFT = MODE_KINDS.
    assert constants["ENTERED"] == "scale_out"
    assert constants["LEFT"] == "scale_in"


def test_resolve_value_through_alias_import(tree):
    # SCALE_OUT at the base-module emit site resolves across the
    # from-import to the events-module constant.
    file, call = find_call(tree, "scaling.base", "emit")
    enclosing = tree.enclosing_function(file, call)
    resolved = tree.resolve_value(call.args[0], file, tree.flow(enclosing))
    assert resolved.values == frozenset({"scale_out"})
    assert resolved.exact


def test_resolve_value_through_local_ifexp_assignment(tree):
    # kind = "fast_path" if fast else "slow_path"; self.emit(kind)
    file, call = find_call(tree, "scaling.impl", "emit")
    enclosing = tree.enclosing_function(file, call)
    resolved = tree.resolve_value(call.args[0], file, tree.flow(enclosing))
    assert resolved.values == frozenset({"fast_path", "slow_path"})


def test_build_rejects_unparsable_source(tmp_path):
    bad = tmp_path / "repro"
    bad.mkdir()
    (bad / "broken.py").write_text("def oops(:\n")
    with pytest.raises(LintError, match="broken.py"):
        ProjectIndex.build([str(tmp_path)])


def test_all_fields_include_inherited_ones(tree):
    fixtures = os.path.join(
        os.path.dirname(__file__), "fixtures", "digest_coverage"
    )
    index = ProjectIndex.build([fixtures])
    info = index.resolve_class("WideSpec")
    assert info is not None
    fields = index.all_fields(info)
    assert "duration" in fields  # own
    assert "scale" in fields     # inherited from MiniSpec
