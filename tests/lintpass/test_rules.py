"""One fixture tree per lint rule: each must fire exactly where planted.

The fixtures under ``fixtures/<case>/repro/...`` mirror the real
package layout so package-scoped rules (wall-clock, rng-direct) apply
to them exactly as they do to ``src/repro``.
"""

import os

import pytest

from repro.errors import LintError
from repro.lintpass import all_rules, run_lint, select_rules

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

SHALLOW_RULES = {
    "rng-direct", "wall-clock", "unordered-iter", "digest-coverage",
    "event-kinds", "frozen-mutate",
}
DEEP_RULES = {
    "deep-digest-provenance", "deep-bus-vocabulary",
    "deep-priority-layers", "deep-frozen-flow",
}


def lint(case: str, rules=None, deep: bool = False):
    return run_lint([os.path.join(FIXTURES, case)], rules=rules, deep=deep)


def rules_fired(report) -> set[str]:
    return {v.rule for v in report.violations}


def test_registry_has_all_ten_rules():
    assert set(all_rules()) == SHALLOW_RULES | DEEP_RULES
    registry = all_rules()
    assert all(registry[rule_id].deep for rule_id in DEEP_RULES)
    assert not any(registry[rule_id].deep for rule_id in SHALLOW_RULES)


def test_rng_direct_fixture():
    report = lint("rng_direct")
    assert rules_fired(report) == {"rng-direct"}
    assert len(report.violations) == 1
    assert "numpy.random.default_rng" in report.violations[0].message


def test_rng_registry_itself_is_exempt():
    # The registry module is the one place allowed to touch the raw RNG.
    import repro

    rng_py = os.path.join(os.path.dirname(os.path.abspath(repro.__file__)),
                          "rng.py")
    report = run_lint([rng_py], rules=["rng-direct"])
    assert report.violations == ()


def test_wall_clock_fixture():
    report = lint("wall_clock")
    assert rules_fired(report) == {"wall-clock"}
    assert "time.time" in report.violations[0].message


def test_unordered_iter_fixture():
    report = lint("unordered_iter")
    assert rules_fired(report) == {"unordered-iter"}
    messages = [v.message for v in report.violations]
    assert any("self.pending" in m for m in messages), messages
    assert any("os.listdir" in m for m in messages), messages


def test_digest_coverage_fixture_catches_missing_and_inherited_fields():
    report = lint("digest_coverage")
    assert rules_fired(report) == {"digest-coverage"}
    by_class = {
        "MiniSpec": [v for v in report.violations if "'MiniSpec'" in v.message],
        "WideSpec": [v for v in report.violations if "'WideSpec'" in v.message],
    }
    # The base class digest misses its own `scale` field...
    assert len(by_class["MiniSpec"]) == 1
    assert "scale" in by_class["MiniSpec"][0].message
    # ...and the subclass that added `duration` while inheriting the
    # stale digest is caught too (the regression this rule exists for).
    assert len(by_class["WideSpec"]) == 1
    assert "duration" in by_class["WideSpec"][0].message
    assert "inherited" in by_class["WideSpec"][0].message


def test_event_kinds_fixture():
    report = lint("event_kinds")
    assert rules_fired(report) == {"event-kinds"}
    assert len(report.violations) == 1
    assert "'scale_sideways'" in report.violations[0].message


def test_event_kinds_without_events_module_flags_every_kind():
    report = lint("event_kinds_missing")
    assert rules_fired(report) == {"event-kinds"}
    assert len(report.violations) == 2  # both literals, declared one included


def test_frozen_mutate_fixture_allows_post_init():
    report = lint("frozen_mutate")
    assert rules_fired(report) == {"frozen-mutate"}
    assert len(report.violations) == 1  # bump() only, not __post_init__
    assert report.violations[0].line > 10


def test_suppression_comment_silences_and_is_reported():
    report = lint("suppressed")
    assert report.clean
    assert len(report.suppressed) == 1
    assert report.suppressed[0].rule == "wall-clock"


def test_suppression_covers_multiline_statement_span():
    # The comment sits on the closing-paren line; the violation anchors
    # on the time.time() line two lines up. The statement-span expansion
    # must connect them.
    report = lint("suppressed_multiline")
    assert report.clean, [v.render() for v in report.violations]
    assert len(report.suppressed) == 1
    assert report.suppressed[0].rule == "wall-clock"


def test_suppression_does_not_blanket_enclosing_block(tmp_path):
    # A suppression on a one-line statement inside a function must stay
    # exact: expanding to the innermost *compound* statement would
    # silence the rule for the whole body.
    tree = tmp_path / "repro" / "sim"
    tree.mkdir(parents=True)
    (tree / "x.py").write_text(
        "import time\n\n\n"
        "def stamp() -> float:\n"
        "    t = time.time()  # repro-lint: ignore[wall-clock]\n"
        "    return t + time.time()\n"
    )
    report = run_lint([str(tmp_path)])
    assert len(report.suppressed) == 1
    assert report.suppressed[0].line == 5
    assert len(report.violations) == 1, [
        v.render() for v in report.violations
    ]
    assert report.violations[0].line == 6


# ----------------------------------------------------------------------
# deep (whole-program) rules
# ----------------------------------------------------------------------
def test_deep_rules_do_not_run_without_the_flag():
    report = lint("deep_priority")
    assert report.clean
    assert set(report.rules_run) == SHALLOW_RULES


def test_deep_digest_provenance_fixture():
    report = lint("deep_digest", deep=True)
    assert rules_fired(report) == {"deep-digest-provenance"}
    messages = sorted(v.message for v in report.violations)
    assert len(messages) == 2
    # A field reachable only through self._digest_parts() is credited;
    # the one no helper touches is the finding.
    assert "'HelperSpec'" in messages[1]
    assert "seed" in messages[1]
    assert "name" not in messages[1] and "scale" not in messages[1]
    # The parsed-but-never-read CLI flag.
    assert "--dead-knob" in messages[0]


def test_deep_bus_vocabulary_fixture():
    report = lint("deep_events", deep=True)
    assert rules_fired(report) == {"deep-bus-vocabulary"}
    messages = [v.message for v in report.violations]
    assert len(messages) == 5
    # Helper-forwarded kind the shallow literal scan cannot see.
    assert any("'mystery_kind'" in m and "helper chain" in m
               for m in messages)
    # Declared but never emitted nor consumed.
    assert any("'dead_kind'" in m and "never emitted" in m
               for m in messages)
    # Handler branch with no live publisher.
    assert any("'ghost_kind'" in m and "no publisher" in m
               for m in messages)
    # decision_kinds divergence, both directions.
    assert any("'demo' emits decision kind 'scale_out'" in m
               for m in messages)
    assert any("'demo' declares decision kind 'threshold_trip'" in m
               for m in messages)
    # A kind emitted only through nudge()'s parameter default is live:
    # neither a ghost nor dead vocabulary.
    assert not any("'defaulted_kind'" in m for m in messages)


def test_deep_bus_dynamic_binding_disables_absence_proofs():
    # The only emitter binds `kind` via **payload: the emitted-kind set
    # is a lower bound, so the publisher-less-handler proof must not
    # fire against PHANTOM_KIND.
    from repro.lintpass.project import ProjectIndex
    from repro.lintpass.rules_deep_events import bus_graph

    case = os.path.join(FIXTURES, "deep_events_dynamic")
    index = ProjectIndex.build([case])
    assert bus_graph(index).complete is False
    report = lint("deep_events_dynamic", deep=True)
    assert report.clean, [v.render() for v in report.violations]


def test_deep_priority_layers_fixture():
    report = lint("deep_priority", deep=True)
    assert rules_fired(report) == {"deep-priority-layers"}
    messages = [v.message for v in report.violations]
    assert len(messages) == 3
    assert any("raw integer priority" in m for m in messages)
    assert any("PRIORITY_MONITOR = 10 collides with PRIORITY_SAMPLER" in m
               for m in messages)
    # The two named-constant call sites (plain and sign-offset) must
    # NOT fire; the plain literal and the signed literal both must.
    raw = [v for v in report.violations if "raw integer" in v.message]
    assert len(raw) == 2


def test_deep_frozen_flow_fixture():
    report = lint("deep_frozen", deep=True)
    assert rules_fired(report) == {"deep-frozen-flow"}
    messages = [v.message for v in report.violations]
    assert len(messages) == 2
    assert any("aliases object.__setattr__" in m for m in messages)
    assert any("frozen dataclass 'Plan'" in m for m in messages)
    # The __post_init__-rooted helper is the shallow rule's false
    # positive; the deep rule resolves the callers and stays quiet.
    assert not any(v.line == 17 for v in report.violations)


def test_deep_supersedes_drops_the_shallow_rule():
    report = lint("deep_frozen", deep=True)
    assert "frozen-mutate" not in report.rules_run
    assert "digest-coverage" not in report.rules_run
    assert "deep-frozen-flow" in report.rules_run
    # Non-superseded shallow rules still run alongside the deep set.
    assert "wall-clock" in report.rules_run


def test_select_rules_deselection_and_supersedes():
    registry = all_rules()
    assert set(select_rules(registry, None, deep=False)) == SHALLOW_RULES
    deep = set(select_rules(registry, None, deep=True))
    assert "digest-coverage" not in deep and "frozen-mutate" not in deep
    assert DEEP_RULES <= deep
    minus = select_rules(registry, ["-wall-clock"], deep=False)
    assert "wall-clock" not in minus and "rng-direct" in minus
    # Naming a deep rule explicitly selects it even without --deep.
    only = select_rules(registry, ["deep-priority-layers"], deep=False)
    assert only == ["deep-priority-layers"]
    with pytest.raises(LintError, match="unknown rule id"):
        select_rules(registry, ["-bogus"], deep=False)


def test_rule_subset_selection():
    report = lint("wall_clock", rules=["rng-direct"])
    assert report.clean  # the wall-clock violation is outside the subset


def test_unknown_rule_selection_raises():
    with pytest.raises(LintError, match="unknown rule id"):
        lint("wall_clock", rules=["no-such-rule"])


def test_unknown_suppression_slug_raises(tmp_path):
    bad = tmp_path / "repro" / "sim"
    bad.mkdir(parents=True)
    (bad / "x.py").write_text(
        "import time\n\n\n"
        "def stamp() -> float:\n"
        "    return time.time()  # repro-lint: ignore[wallclock-typo]\n"
    )
    with pytest.raises(LintError, match="wallclock-typo"):
        run_lint([str(tmp_path)])


def test_missing_path_raises():
    with pytest.raises(LintError, match="no such file"):
        run_lint([os.path.join(FIXTURES, "does_not_exist")])


def test_source_tree_is_clean():
    """The repo's own package must pass its own gate."""
    import repro

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    report = run_lint([package_dir])
    assert report.violations == (), "\n".join(
        v.render() for v in report.violations
    )
    # The one known justified suppression: the RunSpec digest memo.
    assert any(v.rule == "frozen-mutate" for v in report.suppressed)


def test_source_tree_is_deep_clean():
    """The whole-program analyses must pass over the shipped tree too,
    and the digest-memo suppression written against frozen-mutate must
    keep silencing the deep rule that supersedes it."""
    import repro

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    report = run_lint([package_dir], deep=True)
    assert report.violations == (), "\n".join(
        v.render() for v in report.violations
    )
    assert any(v.rule == "deep-frozen-flow" for v in report.suppressed)
    assert report.schema_fingerprint is not None
    assert isinstance(report.schema_version, int)
