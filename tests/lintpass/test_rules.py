"""One fixture tree per lint rule: each must fire exactly where planted.

The fixtures under ``fixtures/<case>/repro/...`` mirror the real
package layout so package-scoped rules (wall-clock, rng-direct) apply
to them exactly as they do to ``src/repro``.
"""

import os

import pytest

from repro.errors import LintError
from repro.lintpass import all_rules, run_lint

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def lint(case: str, rules=None):
    return run_lint([os.path.join(FIXTURES, case)], rules=rules)


def rules_fired(report) -> set[str]:
    return {v.rule for v in report.violations}


def test_registry_has_all_six_rules():
    assert set(all_rules()) == {
        "rng-direct", "wall-clock", "unordered-iter", "digest-coverage",
        "event-kinds", "frozen-mutate",
    }


def test_rng_direct_fixture():
    report = lint("rng_direct")
    assert rules_fired(report) == {"rng-direct"}
    assert len(report.violations) == 1
    assert "numpy.random.default_rng" in report.violations[0].message


def test_rng_registry_itself_is_exempt():
    # The registry module is the one place allowed to touch the raw RNG.
    import repro

    rng_py = os.path.join(os.path.dirname(os.path.abspath(repro.__file__)),
                          "rng.py")
    report = run_lint([rng_py], rules=["rng-direct"])
    assert report.violations == ()


def test_wall_clock_fixture():
    report = lint("wall_clock")
    assert rules_fired(report) == {"wall-clock"}
    assert "time.time" in report.violations[0].message


def test_unordered_iter_fixture():
    report = lint("unordered_iter")
    assert rules_fired(report) == {"unordered-iter"}
    messages = [v.message for v in report.violations]
    assert any("self.pending" in m for m in messages), messages
    assert any("os.listdir" in m for m in messages), messages


def test_digest_coverage_fixture_catches_missing_and_inherited_fields():
    report = lint("digest_coverage")
    assert rules_fired(report) == {"digest-coverage"}
    by_class = {
        "MiniSpec": [v for v in report.violations if "'MiniSpec'" in v.message],
        "WideSpec": [v for v in report.violations if "'WideSpec'" in v.message],
    }
    # The base class digest misses its own `scale` field...
    assert len(by_class["MiniSpec"]) == 1
    assert "scale" in by_class["MiniSpec"][0].message
    # ...and the subclass that added `duration` while inheriting the
    # stale digest is caught too (the regression this rule exists for).
    assert len(by_class["WideSpec"]) == 1
    assert "duration" in by_class["WideSpec"][0].message
    assert "inherited" in by_class["WideSpec"][0].message


def test_event_kinds_fixture():
    report = lint("event_kinds")
    assert rules_fired(report) == {"event-kinds"}
    assert len(report.violations) == 1
    assert "'scale_sideways'" in report.violations[0].message


def test_event_kinds_without_events_module_flags_every_kind():
    report = lint("event_kinds_missing")
    assert rules_fired(report) == {"event-kinds"}
    assert len(report.violations) == 2  # both literals, declared one included


def test_frozen_mutate_fixture_allows_post_init():
    report = lint("frozen_mutate")
    assert rules_fired(report) == {"frozen-mutate"}
    assert len(report.violations) == 1  # bump() only, not __post_init__
    assert report.violations[0].line > 10


def test_suppression_comment_silences_and_is_reported():
    report = lint("suppressed")
    assert report.clean
    assert len(report.suppressed) == 1
    assert report.suppressed[0].rule == "wall-clock"


def test_rule_subset_selection():
    report = lint("wall_clock", rules=["rng-direct"])
    assert report.clean  # the wall-clock violation is outside the subset


def test_unknown_rule_selection_raises():
    with pytest.raises(LintError, match="unknown rule id"):
        lint("wall_clock", rules=["no-such-rule"])


def test_unknown_suppression_slug_raises(tmp_path):
    bad = tmp_path / "repro" / "sim"
    bad.mkdir(parents=True)
    (bad / "x.py").write_text(
        "import time\n\n\n"
        "def stamp() -> float:\n"
        "    return time.time()  # repro-lint: ignore[wallclock-typo]\n"
    )
    with pytest.raises(LintError, match="wallclock-typo"):
        run_lint([str(tmp_path)])


def test_missing_path_raises():
    with pytest.raises(LintError, match="no such file"):
        run_lint([os.path.join(FIXTURES, "does_not_exist")])


def test_source_tree_is_clean():
    """The repo's own package must pass its own gate."""
    import repro

    package_dir = os.path.dirname(os.path.abspath(repro.__file__))
    report = run_lint([package_dir])
    assert report.violations == (), "\n".join(
        v.render() for v in report.violations
    )
    # The one known justified suppression: the RunSpec digest memo.
    assert any(v.rule == "frozen-mutate" for v in report.suppressed)
