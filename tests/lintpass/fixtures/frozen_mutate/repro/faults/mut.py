"""Fixture: frozen-dataclass mutation inside and outside __post_init__."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Episode:
    kind: str
    count: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "count", max(0, self.count))

    def bump(self) -> None:
        object.__setattr__(self, "count", self.count + 1)
