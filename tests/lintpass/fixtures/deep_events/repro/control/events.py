"""Fixture vocabulary: one dead kind, one ghost kind, live ones."""

from dataclasses import dataclass

__all__ = ["DecisionEvent", "THRESHOLD_TRIP", "SCALE_OUT", "DEAD_KIND",
           "GHOST_KIND", "DEFAULTED_KIND"]

THRESHOLD_TRIP = "threshold_trip"
SCALE_OUT = "scale_out"
#: declared, never emitted, never consumed -> dead-vocabulary finding.
DEAD_KIND = "dead_kind"
#: declared and consumed by a handler, but no publisher emits it.
GHOST_KIND = "ghost_kind"
#: emitted only through a helper's parameter *default* — must count as
#: live, not as a ghost.
DEFAULTED_KIND = "defaulted_kind"


@dataclass(frozen=True)
class DecisionEvent:
    time: float
    kind: str
