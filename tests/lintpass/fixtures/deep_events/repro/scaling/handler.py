"""Fixture subscriber: one live branch, one publisher-less branch."""

from repro.control.events import (
    DEFAULTED_KIND,
    GHOST_KIND,
    THRESHOLD_TRIP,
    DecisionEvent,
)


class Listener:
    def __init__(self) -> None:
        self.trips = 0
        self.ghosts = 0
        self.nudges = 0

    def on_decision(self, event: DecisionEvent) -> None:
        if event.kind == THRESHOLD_TRIP:
            self.trips += 1
        # No publisher in the tree emits GHOST_KIND: dead branch.
        elif event.kind == GHOST_KIND:
            self.ghosts += 1
        # Published via nudge()'s default — a live branch, not a ghost.
        elif event.kind == DEFAULTED_KIND:
            self.nudges += 1
