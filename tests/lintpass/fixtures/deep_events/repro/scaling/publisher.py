"""Fixture publisher: emits through a helper the shallow rule cannot see."""

from repro.control.events import DEFAULTED_KIND, THRESHOLD_TRIP, DecisionEvent


class BusClient:
    def __init__(self) -> None:
        self.outbox: list[DecisionEvent] = []

    def _publish(self, kind: str) -> None:
        self.outbox.append(DecisionEvent(0.0, kind))

    def nudge(self, kind: str = DEFAULTED_KIND) -> None:
        self._publish(kind)

    def tick(self) -> None:
        self._publish(THRESHOLD_TRIP)
        # Helper-forwarded and undeclared: the deep finding to plant.
        self._publish("mystery_kind")
        # No argument: the *default* kind must count as emitted.
        self.nudge()
