"""Fixture registry: a spec whose decision_kinds diverge both ways."""

from repro.control.events import SCALE_OUT, DecisionEvent


class ControllerSpec:
    def __init__(self, *, name: str, factory: object,
                 decision_kinds: tuple[str, ...]) -> None:
        self.name = name
        self.factory = factory
        self.decision_kinds = decision_kinds


_SPECS: dict[str, ControllerSpec] = {}


def register_controller(spec: ControllerSpec) -> None:
    _SPECS[spec.name] = spec


class DemoController:
    def __init__(self) -> None:
        self.bus: list[DecisionEvent] = []

    def step(self) -> None:
        self.bus.append(DecisionEvent(1.0, SCALE_OUT))


def _build_demo() -> DemoController:
    return DemoController()


register_controller(ControllerSpec(
    name="demo",
    factory=_build_demo,
    # Emits scale_out (undeclared here) and never emits threshold_trip
    # (declared here): both divergence directions in one spec.
    decision_kinds=("threshold_trip",),
))
