"""Fixture calendar layers: a value collision and a raw-integer site."""

PRIORITY_MODEL = 0
PRIORITY_SAMPLER = 10
PRIORITY_MONITOR = 10


class Calendar:
    def __init__(self) -> None:
        self.slots: list[tuple] = []

    def schedule(self, when: float, callback: object, *,
                 priority: int = PRIORITY_MODEL) -> None:
        self.slots.append((when, priority, callback))


def tick() -> None:
    pass


def arm(calendar: Calendar) -> None:
    calendar.schedule(1.0, tick, priority=PRIORITY_SAMPLER)
    calendar.schedule(2.0, tick, priority=3)
    # A signed literal is still a raw integer, not a named layer.
    calendar.schedule(3.0, tick, priority=-1)
    # Offsetting a named layer stays legal, sign included.
    calendar.schedule(4.0, tick, priority=-PRIORITY_MODEL)
