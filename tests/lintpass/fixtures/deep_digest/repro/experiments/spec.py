"""Fixture spec: digest delegates to a helper; one field escapes both."""

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class HelperSpec:
    name: str
    scale: float
    seed: int

    def _digest_parts(self) -> tuple:
        # Covers name and scale -- but never seed.
        return (self.name, self.scale)

    def digest(self) -> str:
        payload = repr(self._digest_parts()).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()
