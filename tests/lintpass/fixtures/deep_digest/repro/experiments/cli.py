"""Fixture CLI: one wired flag, one parsed-but-never-read flag."""

import argparse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--dead-knob", type=int, default=0)
    return parser


def run(argv: list) -> float:
    args = build_parser().parse_args(argv)
    return args.scale
