"""Fixture: reads the host clock inside a simulation package."""

import time


def stamp() -> float:
    return time.time()
