"""Fixture frozen flows: a rooted helper (legal), an alias, a setattr."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Plan:
    slot: float
    label: str

    def __post_init__(self) -> None:
        self._normalise()

    def _normalise(self) -> None:
        # Only ever called from __post_init__: the deep rule must stay
        # quiet here even though the shallow one would fire.
        object.__setattr__(self, "label", self.label.strip())


def retag(plan: Plan) -> Plan:
    setattr(plan, "label", "retagged")
    return plan


def sneak(plan: Plan) -> None:
    mut = object.__setattr__
    mut(plan, "slot", 0.0)
