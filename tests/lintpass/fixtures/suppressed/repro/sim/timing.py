"""Fixture: a wall-clock read with a justified per-line suppression."""

import time


def stamp() -> float:
    return time.time()  # repro-lint: ignore[wall-clock]
