"""Fixture: suppression comment on the last line of a multi-line stmt."""

import time


def window() -> tuple:
    return (
        0.0,
        time.time(),
    )  # repro-lint: ignore[wall-clock]
