"""Fixture: a digest method that misses fields.

``MiniSpec.digest`` covers name and seed but not ``scale``;
``WideSpec`` adds ``duration`` while inheriting the stale digest — the
classic way a content-addressed cache starts aliasing distinct specs.
"""

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class MiniSpec:
    name: str
    seed: int
    scale: float

    def digest(self) -> str:
        payload = f"{self.name}:{self.seed}"
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class WideSpec(MiniSpec):
    duration: float = 0.0
