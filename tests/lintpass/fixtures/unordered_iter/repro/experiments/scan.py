"""Fixture: filesystem-order directory enumeration (no sorted)."""

import os


def entries(path: str) -> list[str]:
    return os.listdir(path)
