"""Fixture: hash-order iteration feeding bus publication."""


class Flusher:
    def __init__(self, bus) -> None:
        self.bus = bus
        self.pending = {}

    def flush(self) -> None:
        for name in self.pending:
            self.bus.publish(name)
