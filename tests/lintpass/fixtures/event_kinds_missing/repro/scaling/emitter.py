"""Fixture: emission sites with no events module in the tree at all."""


class Emitter:
    def __init__(self, bus) -> None:
        self.bus = bus

    def _emit(self, kind: str) -> None:
        self.bus.publish(kind)

    def act(self) -> None:
        self._emit("scale_in")
        self._emit("scale_sideways")
