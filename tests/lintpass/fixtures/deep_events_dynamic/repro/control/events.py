"""Fixture vocabulary for the dynamic-binding completeness case."""

from dataclasses import dataclass

__all__ = ["DecisionEvent", "PHANTOM_KIND"]

#: consumed by a handler; the only emitter binds its kind dynamically,
#: so absence can't be proven and no ghost finding may fire.
PHANTOM_KIND = "phantom_kind"


@dataclass(frozen=True)
class DecisionEvent:
    time: float
    kind: str
