"""Fixture subscriber matching a kind only the dynamic emitter sends."""

from repro.control.events import PHANTOM_KIND, DecisionEvent


class Listener:
    def __init__(self) -> None:
        self.hits = 0

    def on_decision(self, event: DecisionEvent) -> None:
        if event.kind == PHANTOM_KIND:
            self.hits += 1
