"""Fixture publisher whose kind binding is dynamic (``**payload``)."""

from repro.control.events import DecisionEvent


class Bus:
    def __init__(self) -> None:
        self.outbox: list[DecisionEvent] = []

    def _emit(self, kind: str) -> None:
        self.outbox.append(DecisionEvent(0.0, kind))

    def replay(self, payload: dict) -> None:
        # Anything could bind `kind` here — the emitted-kind set is a
        # lower bound and completeness must drop.
        self._emit(**payload)
