"""Fixture: mints an RNG outside the registry (rng-direct)."""

import numpy as np


def jitter() -> float:
    rng = np.random.default_rng(7)
    return float(rng.random())
