"""Fixture vocabulary: the declared event kinds."""

SCALE_OUT = "scale_out"

KINDS = ("scale_out", "scale_in")
