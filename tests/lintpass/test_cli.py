"""The ``repro lint`` CLI: exit codes, JSON schema, default target."""

import json
import os

from repro.cli import main
from repro.lintpass.report import JSON_SCHEMA_VERSION

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def test_clean_tree_exits_zero(capsys):
    rc = main(["lint", os.path.join(FIXTURES, "suppressed")])
    out = capsys.readouterr().out
    assert rc == 0
    assert "clean: 0 violations" in out
    assert "(1 suppressed)" in out


def test_violations_exit_one_and_list_positions(capsys):
    target = os.path.join(FIXTURES, "wall_clock")
    rc = main(["lint", target])
    out = capsys.readouterr().out
    assert rc == 1
    assert "[wall-clock]" in out
    assert "timing.py:7:" in out


def test_default_target_is_the_package(capsys):
    rc = main(["lint"])
    out = capsys.readouterr().out
    assert rc == 0, out  # the shipped tree must be clean


def test_json_schema(capsys):
    target = os.path.join(FIXTURES, "wall_clock")
    rc = main(["lint", "--json", target])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["root"] == [target]
    assert payload["files_checked"] >= 1
    assert payload["counts"] == {"wall-clock": 1}
    assert payload["deep"] is False
    assert "wall-clock" in payload["rules"]
    assert payload["suppressed"] == 0
    assert "schema" not in payload  # shallow runs record no fingerprint
    (violation,) = payload["violations"]
    assert set(violation) == {"rule", "path", "line", "col", "message"}
    assert violation["rule"] == "wall-clock"
    assert violation["path"].endswith("timing.py")


def test_deep_flag_runs_the_deep_rules(capsys):
    target = os.path.join(FIXTURES, "deep_priority")
    assert main(["lint", target]) == 0  # shallow pass sees nothing
    capsys.readouterr()
    rc = main(["lint", "--deep", "--json", target])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["deep"] is True
    assert "deep-priority-layers" in payload["rules"]
    assert payload["counts"] == {"deep-priority-layers": 3}


def test_deep_json_over_package_carries_schema_fingerprint(capsys):
    rc = main(["lint", "--deep", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0, payload["violations"]
    assert payload["violations"] == []
    fingerprint = payload["schema"]["fingerprint"]
    assert len(fingerprint) == 64
    assert isinstance(payload["schema"]["version"], int)


def test_bare_rules_flag_lists_the_registry(capsys):
    rc = main(["lint", "--rules"])
    out = capsys.readouterr().out
    assert rc == 0
    header, *rows = [line for line in out.splitlines() if line.strip()]
    assert {"rule", "deep", "supersedes", "summary"} <= set(header.split())
    assert any("deep-bus-vocabulary" in row and "yes" in row for row in rows)
    assert any(
        "deep-frozen-flow" in row and "frozen-mutate" in row for row in rows
    )
    assert "deselect" in out


def test_rules_flag_selects_a_deep_rule_without_deep(capsys):
    target = os.path.join(FIXTURES, "deep_frozen")
    rc = main(["lint", "--rules", "deep-frozen-flow", target])
    out = capsys.readouterr().out
    assert rc == 1
    assert "[deep-frozen-flow]" in out


def test_rules_flag_deselects(capsys):
    # `-id` must be attached with `=` so argparse doesn't read a flag.
    target = os.path.join(FIXTURES, "wall_clock")
    assert main(["lint", "--rules=-wall-clock", target]) == 0


def test_baseline_round_trip_gates_on_growth(tmp_path, capsys):
    target = os.path.join(FIXTURES, "deep_priority")
    baseline = str(tmp_path / "baseline.json")
    # Record the three pre-existing findings as the accepted backlog...
    rc = main(["lint", "--deep", "--update-baseline", baseline, target])
    captured = capsys.readouterr()
    assert rc == 0
    assert "baseline written" in captured.err
    payload = json.loads(open(baseline).read())
    assert sum(payload["findings"].values()) == 3
    # ...after which the same tree passes the gate.
    rc = main(["lint", "--deep", "--baseline", baseline, target])
    out = capsys.readouterr().out
    assert rc == 0
    assert "baseline: 0 new, 3 known, 0 retired" in out
    # A different fixture's findings are growth: the gate fails.
    other = os.path.join(FIXTURES, "deep_frozen")
    rc = main(["lint", "--deep", "--baseline", baseline, other])
    out = capsys.readouterr().out
    assert rc == 1
    assert "baseline: 2 new" in out
    rc = main(["lint", "--deep", "--json", "--baseline", baseline, other])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["baseline"]["new"] == 2
    assert len(payload["baseline"]["new_findings"]) == 2
    assert payload["baseline"]["schema_note"] is None


def test_rules_subset_flag(capsys):
    target = os.path.join(FIXTURES, "wall_clock")
    assert main(["lint", "--rules", "rng-direct", target]) == 0
    capsys.readouterr()
    assert main(["lint", "--rules", "wall-clock,rng-direct", target]) == 1


def test_unknown_rule_flag_exits_two(capsys):
    rc = main(["lint", "--rules", "bogus", FIXTURES])
    err = capsys.readouterr().err
    assert rc == 2
    assert "unknown rule id" in err
