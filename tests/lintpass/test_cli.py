"""The ``repro lint`` CLI: exit codes, JSON schema, default target."""

import json
import os

from repro.cli import main
from repro.lintpass.report import JSON_SCHEMA_VERSION

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def test_clean_tree_exits_zero(capsys):
    rc = main(["lint", os.path.join(FIXTURES, "suppressed")])
    out = capsys.readouterr().out
    assert rc == 0
    assert "clean: 0 violations" in out
    assert "(1 suppressed)" in out


def test_violations_exit_one_and_list_positions(capsys):
    target = os.path.join(FIXTURES, "wall_clock")
    rc = main(["lint", target])
    out = capsys.readouterr().out
    assert rc == 1
    assert "[wall-clock]" in out
    assert "timing.py:7:" in out


def test_default_target_is_the_package(capsys):
    rc = main(["lint"])
    out = capsys.readouterr().out
    assert rc == 0, out  # the shipped tree must be clean


def test_json_schema(capsys):
    target = os.path.join(FIXTURES, "wall_clock")
    rc = main(["lint", "--json", target])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["root"] == [target]
    assert payload["files_checked"] >= 1
    assert payload["counts"] == {"wall-clock": 1}
    (violation,) = payload["violations"]
    assert set(violation) == {"rule", "path", "line", "col", "message"}
    assert violation["rule"] == "wall-clock"
    assert violation["path"].endswith("timing.py")


def test_rules_subset_flag(capsys):
    target = os.path.join(FIXTURES, "wall_clock")
    assert main(["lint", "--rules", "rng-direct", target]) == 0
    capsys.readouterr()
    assert main(["lint", "--rules", "wall-clock,rng-direct", target]) == 1


def test_unknown_rule_flag_exits_two(capsys):
    rc = main(["lint", "--rules", "bogus", FIXTURES])
    err = capsys.readouterr().err
    assert rc == 2
    assert "unknown rule id" in err
