"""Baseline burn-down: new findings gate, matched pass, retired shrink."""

import pytest

from repro.errors import LintError
from repro.lintpass.base import Violation
from repro.lintpass.baseline import (
    baseline_payload,
    compare_baseline,
    finding_key,
    load_baseline,
    stable_path,
    write_baseline,
)
from repro.lintpass.run import LintReport


def violation(rule="wall-clock", path="src/repro/sim/x.py", line=3,
              message="host clock read"):
    return Violation(path=path, line=line, col=0, rule=rule, message=message)


def report(violations, fingerprint=None, version=None):
    return LintReport(
        roots=("src/repro",), files_checked=1,
        violations=tuple(violations), suppressed=(),
        rules_run=("wall-clock",), deep=True,
        schema_fingerprint=fingerprint, schema_version=version,
    )


def test_stable_path_normalises_to_last_repro_component():
    assert stable_path("/ci/checkout/src/repro/sim/engine.py") == \
        "repro/sim/engine.py"
    assert stable_path("src/repro/sim/engine.py") == "repro/sim/engine.py"
    assert stable_path("standalone.py") == "standalone.py"


def test_finding_key_is_line_independent():
    assert finding_key(violation(line=3)) == finding_key(violation(line=99))


def test_matched_finding_passes_the_gate():
    base = baseline_payload(report([violation()]))
    delta = compare_baseline(report([violation(line=42)]), base)
    assert delta.gate_passed
    assert delta.matched == 1 and not delta.new and delta.retired == 0


def test_new_finding_fails_the_gate():
    base = baseline_payload(report([violation()]))
    extra = violation(rule="deep-priority-layers", message="raw priority")
    delta = compare_baseline(report([violation(), extra]), base)
    assert not delta.gate_passed
    assert len(delta.new) == 1
    assert delta.new[0].rule == "deep-priority-layers"
    assert delta.new_keys == (finding_key(extra),)


def test_count_increase_beyond_budget_is_new():
    base = baseline_payload(report([violation()]))
    delta = compare_baseline(
        report([violation(line=1), violation(line=2)]), base
    )
    assert delta.matched == 1 and len(delta.new) == 1


def test_fixed_finding_retires_and_still_passes():
    base = baseline_payload(report([violation()]))
    delta = compare_baseline(report([]), base)
    assert delta.gate_passed
    assert delta.retired == 1


def test_schema_drift_without_version_bump_fails():
    base = baseline_payload(report([], fingerprint="a" * 64, version=7))
    delta = compare_baseline(
        report([], fingerprint="b" * 64, version=7), base
    )
    assert not delta.gate_passed
    assert delta.schema_note is not None
    assert "SCHEMA_VERSION" in delta.schema_note
    assert delta.schema_refresh is None


def test_schema_drift_with_version_bump_is_legal_but_reminds():
    base = baseline_payload(report([], fingerprint="a" * 64, version=7))
    delta = compare_baseline(
        report([], fingerprint="b" * 64, version=8), base
    )
    assert delta.gate_passed and delta.schema_note is None
    # The gate stays open, but the stale pin must not pass silently —
    # otherwise the fingerprint gate is disarmed until someone notices.
    assert delta.schema_refresh is not None
    assert "--update-baseline" in delta.schema_refresh


def test_unchanged_schema_has_no_refresh_note():
    base = baseline_payload(report([], fingerprint="a" * 64, version=7))
    delta = compare_baseline(
        report([], fingerprint="a" * 64, version=7), base
    )
    assert delta.gate_passed
    assert delta.schema_note is None and delta.schema_refresh is None


def test_write_and_load_round_trip(tmp_path):
    path = str(tmp_path / "baseline.json")
    write_baseline(path, report([violation()], fingerprint="c" * 64,
                                version=3))
    loaded = load_baseline(path)
    assert loaded["version"] == 1
    assert loaded["findings"] == {finding_key(violation()): 1}
    assert loaded["schema_fingerprint"] == "c" * 64
    assert loaded["schema_version"] == 3


def test_load_rejects_non_baseline_files(tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text("{}")
    with pytest.raises(LintError, match="findings"):
        load_baseline(str(bogus))
    missing = str(tmp_path / "absent.json")
    with pytest.raises(LintError, match="cannot read"):
        load_baseline(missing)
