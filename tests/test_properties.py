"""Property-based tests (hypothesis) on core data structures and
invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitoring.percentiles import tail_summary
from repro.ntier.capacity import CapacityModel, ContentionModel, Resource
from repro.ntier.pools import FifoPool
from repro.rng import RngRegistry
from repro.sct.grouping import band_representative, bucketize
from repro.sct.intervention import welch_t_pvalue
from repro.sct.tuples import MetricTuple
from repro.sim.engine import Simulator
from repro.workload.trace import Trace


# ----------------------------------------------------------------------
# FIFO pool invariants under arbitrary acquire/release/resize sequences
# ----------------------------------------------------------------------

@st.composite
def pool_programs(draw):
    ops = draw(
        st.lists(
            st.one_of(
                st.just(("acquire",)),
                st.just(("release",)),
                st.tuples(st.just("resize"), st.integers(1, 10)),
            ),
            min_size=1,
            max_size=60,
        )
    )
    return ops


@given(pool_programs())
@settings(max_examples=200, deadline=None)
def test_pool_invariants(ops):
    pool = FifoPool("p", 3)
    granted: list[int] = []
    queued_tokens: list[int] = []
    next_token = 0
    for op in ops:
        if op[0] == "acquire":
            token = next_token
            next_token += 1
            queued_tokens.append(token)
            pool.acquire(token, granted.append)
        elif op[0] == "release":
            if pool.in_use > 0:
                pool.release()
        else:
            pool.resize(op[1])
        # invariants after every step
        assert pool.in_use >= 0
        assert pool.queued >= 0
        # grants never exceed the number of acquires
        assert len(granted) <= next_token
        # over-subscription only via shrink: in_use <= historical max limit
        assert pool.in_use <= 10 + 3
        # FIFO: grants happen in token order
        assert granted == sorted(granted)
    # accounting: grants + still-queued == total acquires
    assert len(granted) + pool.queued == next_token


# ----------------------------------------------------------------------
# capacity model properties
# ----------------------------------------------------------------------

@given(
    a_sat=st.floats(1.0, 100.0),
    sigma=st.floats(0.0, 0.05),
    kappa=st.floats(0.0, 1e-3),
    active=st.floats(0.0, 500.0),
    admitted_extra=st.floats(0.0, 500.0),
)
@settings(max_examples=200, deadline=None)
def test_capacity_work_rate_bounds(a_sat, sigma, kappa, active, admitted_extra):
    m = CapacityModel(
        [Resource("cpu", 1.0, 1.0 / a_sat)], ContentionModel(sigma, kappa)
    )
    rate = m.work_rate(active, active + admitted_extra)
    assert 0.0 <= rate <= min(active, a_sat) + 1e-9
    # more admitted never speeds things up
    assert rate <= m.work_rate(active, active) + 1e-9


@given(
    a_sat=st.floats(2.0, 50.0),
    kappa=st.floats(1e-6, 1e-3),
)
@settings(max_examples=100, deadline=None)
def test_throughput_curve_is_unimodal(a_sat, kappa):
    m = CapacityModel(
        [Resource("cpu", 1.0, 1.0 / a_sat)], ContentionModel(0.001, kappa)
    )
    tps = [m.throughput(q, 0.01) for q in range(1, 200)]
    peak = int(np.argmax(tps))
    # rising (non-strictly) before the peak, falling after
    for i in range(peak):
        assert tps[i] <= tps[i + 1] + 1e-9
    for i in range(peak, len(tps) - 1):
        assert tps[i] >= tps[i + 1] - 1e-9


# ----------------------------------------------------------------------
# banding / bucketing
# ----------------------------------------------------------------------

@given(st.integers(1, 10_000))
def test_band_representative_stable(q):
    rep = band_representative(q)
    assert rep >= 1
    # idempotent-ish: the representative maps into its own band
    assert band_representative(rep) == rep or abs(band_representative(rep) - rep) <= max(2, int(0.15 * rep))


@given(st.lists(st.floats(0.5, 200.0), min_size=1, max_size=200))
def test_bucketize_conserves_samples(qs):
    tuples = [MetricTuple(q, 1.0, 0.01, 1.0) for q in qs]
    buckets = bucketize(tuples, min_samples=1)
    assert sum(b.count for b in buckets.values()) == len(tuples)


# ----------------------------------------------------------------------
# Welch test properties
# ----------------------------------------------------------------------

@given(
    st.lists(st.floats(1.0, 100.0), min_size=2, max_size=30),
    st.lists(st.floats(1.0, 100.0), min_size=2, max_size=30),
)
@settings(max_examples=200, deadline=None)
def test_welch_pvalue_in_unit_interval(a, b):
    p = welch_t_pvalue(a, b)
    assert 0.0 <= p <= 1.0


@given(st.lists(st.floats(1.0, 100.0), min_size=3, max_size=30))
@settings(max_examples=100, deadline=None)
def test_welch_self_comparison_large_p(a):
    assert welch_t_pvalue(a, a) >= 0.49


# ----------------------------------------------------------------------
# percentiles
# ----------------------------------------------------------------------

@given(st.lists(st.floats(0.001, 1e4), min_size=1, max_size=500))
def test_tail_summary_ordering(values):
    t = tail_summary(values)
    assert t.p50 <= t.p95 + 1e-9
    assert t.p95 <= t.p99 + 1e-9
    assert t.p99 <= t.max + 1e-9
    # ulp-level tolerance: np.mean of identical values can differ in
    # the last bit from the values themselves
    tol = 1e-9 * max(abs(t.max), 1.0)
    assert min(values) - tol <= t.mean <= t.max + tol


# ----------------------------------------------------------------------
# traces
# ----------------------------------------------------------------------

@given(
    knots=st.lists(st.floats(0.1, 1000.0), min_size=2, max_size=30),
    query=st.floats(-10.0, 2000.0),
)
def test_trace_interpolation_within_bounds(knots, query):
    times = np.cumsum(np.asarray(knots))
    times = np.concatenate([[0.0], times])
    users = np.abs(np.sin(times)) * 100.0
    trace = Trace("t", times, users)
    value = trace.users_at(query)
    assert users.min() - 1e-9 <= value <= users.max() + 1e-9


# ----------------------------------------------------------------------
# engine determinism
# ----------------------------------------------------------------------

@given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
def test_engine_executes_sorted(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.schedule(t, fired.append, t)
    sim.run()
    assert fired == sorted(times)


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=50)
def test_rng_streams_reproducible(seed):
    a = RngRegistry(seed).stream("x").random(3)
    b = RngRegistry(seed).stream("x").random(3)
    assert list(a) == list(b)
