"""Tests for bootstrap confidence intervals on Q_lower."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.sct.bootstrap import bootstrap_q_lower
from repro.sct.model import SCTModel

from tests.sct.test_model import synthetic_curve


def model():
    return SCTModel(bucket_width=1, min_samples=4)


def test_clean_curve_gives_tight_interval():
    tuples = synthetic_curve(range(1, 31), kappa=2e-3, noise=0.02, n_per_q=30)
    interval = bootstrap_q_lower(tuples, model(), n_resamples=100,
                                 rng=np.random.default_rng(1))
    assert interval.lower <= interval.point <= interval.upper
    assert 9 <= interval.point <= 11
    assert interval.width <= 3
    assert "Q_lower" in interval.describe()


def test_noisy_curve_gives_wider_interval():
    clean = synthetic_curve(range(1, 31), kappa=2e-3, noise=0.02, n_per_q=30)
    noisy = synthetic_curve(range(1, 31), kappa=2e-3, noise=0.35, n_per_q=6,
                            seed=2)
    ci_clean = bootstrap_q_lower(clean, model(), n_resamples=80,
                                 rng=np.random.default_rng(1))
    ci_noisy = bootstrap_q_lower(noisy, model(), n_resamples=80,
                                 rng=np.random.default_rng(1))
    assert ci_noisy.width >= ci_clean.width


def test_interval_contains_truth_most_of_the_time():
    hits = 0
    for seed in range(8):
        tuples = synthetic_curve(range(1, 26), kappa=2e-3, noise=0.05,
                                 n_per_q=15, seed=seed)
        ci = bootstrap_q_lower(tuples, model(), n_resamples=60,
                               rng=np.random.default_rng(seed))
        hits += ci.lower <= 10 <= ci.upper
    assert hits >= 6  # ~90% nominal coverage, allow slack


def test_deterministic_given_rng():
    tuples = synthetic_curve(range(1, 26), kappa=2e-3)
    a = bootstrap_q_lower(tuples, model(), rng=np.random.default_rng(7))
    b = bootstrap_q_lower(tuples, model(), rng=np.random.default_rng(7))
    assert (a.lower, a.upper) == (b.lower, b.upper)


def test_validation():
    tuples = synthetic_curve(range(1, 26), kappa=2e-3)
    with pytest.raises(EstimationError):
        bootstrap_q_lower(tuples, model(), level=0.4)
    with pytest.raises(EstimationError):
        bootstrap_q_lower(tuples, model(), n_resamples=5)
    with pytest.raises(EstimationError):
        bootstrap_q_lower(tuples[:10], model())  # too thin to estimate
