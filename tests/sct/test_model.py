"""Tests for the SCT estimator on synthetic curves."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.sct.model import SCTModel
from repro.sct.tuples import MetricTuple


def synthetic_curve(
    qs,
    a_sat=10.0,
    tp_max=100.0,
    kappa=2e-3,
    noise=0.02,
    n_per_q=30,
    util_fn=None,
    seed=0,
):
    """Tuples following the three-stage curve with utilisation."""
    rng = np.random.default_rng(seed)
    tuples = []
    for q in qs:
        penalty = 1.0 / (1.0 + kappa * q * max(0.0, q - 1.0))
        tp = tp_max * min(q, a_sat) / a_sat * penalty
        util = util_fn(q) if util_fn else min(1.0, q / a_sat)
        for _ in range(n_per_q):
            tuples.append(
                MetricTuple(
                    q=q,
                    tp=float(tp * (1 + rng.normal(0, noise))),
                    rt=q / tp if tp > 0 else float("nan"),
                    util=util,
                )
            )
    return tuples


def model(**kw):
    defaults = dict(bucket_width=1, min_samples=5)
    defaults.update(kw)
    return SCTModel(**defaults)


def test_finds_knee_of_clean_curve():
    tuples = synthetic_curve(range(1, 41))
    est = model().estimate(tuples)
    assert 9 <= est.q_lower <= 11
    assert est.optimal == est.q_lower
    assert est.ascending_observed
    assert est.saturation_observed
    assert est.hardware_limited
    assert est.confident


def test_q_upper_before_descent():
    tuples = synthetic_curve(range(1, 81), kappa=1e-2)
    est = model().estimate(tuples)
    assert est.q_lower <= est.q_upper < 40


def test_ascending_only_window_is_unsaturated():
    tuples = synthetic_curve(range(1, 8), a_sat=10)  # never reaches the knee
    est = model().estimate(tuples)
    assert not est.saturation_observed
    assert est.q_upper == 7


def test_plateau_only_window_lacks_ascending_evidence():
    tuples = synthetic_curve(range(10, 30), a_sat=10, kappa=1e-4)
    est = model().estimate(tuples)
    assert not est.ascending_observed


def test_contaminated_plateau_not_hardware_limited():
    """A plateau at low utilisation (downstream stall) must be flagged."""
    tuples = synthetic_curve(range(1, 41), util_fn=lambda q: 0.3)
    est = model().estimate(tuples)
    assert est.saturation_observed
    assert not est.hardware_limited
    assert est.plateau_util == pytest.approx(0.3)


def test_describe_mentions_flags():
    tuples = synthetic_curve(range(1, 8), a_sat=10)
    est = model().estimate(tuples)
    assert "unsaturated" in est.describe()


def test_too_few_buckets_raises():
    tuples = synthetic_curve([5, 6])
    with pytest.raises(EstimationError):
        model().estimate(tuples)


def test_all_zero_throughput_raises():
    tuples = [MetricTuple(q, 0.0, float("nan"), 1.0) for q in (2, 4, 6) for _ in range(6)]
    with pytest.raises(EstimationError):
        model().estimate(tuples)


def test_parameter_validation():
    with pytest.raises(EstimationError):
        SCTModel(tolerance=0.0)
    with pytest.raises(EstimationError):
        SCTModel(alpha=1.5)
    with pytest.raises(EstimationError):
        SCTModel(min_samples=0)
    with pytest.raises(EstimationError):
        SCTModel(min_buckets=1)
    with pytest.raises(EstimationError):
        SCTModel(util_threshold=0.0)


def test_noise_does_not_create_false_plateau_split():
    """An isolated noisy bucket inside the plateau must not split it."""
    tuples = synthetic_curve(range(1, 31), kappa=2e-4, noise=0.01, seed=1)
    # poison the bucket at q=12 with a few low samples (still above the
    # 3*tolerance rescue band to keep them from passing on their own)
    tuples = [
        t if not (t.q == 12 and i % 7 == 0) else MetricTuple(12, t.tp * 0.93, t.rt, t.util)
        for i, t in enumerate(tuples)
    ]
    est = model().estimate(tuples)
    assert est.q_upper > 12


def test_estimate_from_samples_roundtrip():
    from repro.monitoring.interval import IntervalSample

    samples = [
        IntervalSample(
            t_end=float(i), concurrency=q, throughput=100.0 * min(q, 10) / 10,
            response_time=0.01, completions=5, utilization={"cpu": min(1.0, q / 10)},
        )
        for q in range(1, 21)
        for i in range(6)
    ]
    est = model().estimate_from_samples(samples)
    assert 9 <= est.q_lower <= 11


def test_vertical_scaling_shifts_estimate():
    one_core = model().estimate(synthetic_curve(range(1, 41), a_sat=10, kappa=2e-4))
    two_core = model().estimate(synthetic_curve(range(1, 61), a_sat=20, kappa=2e-4))
    assert 9 <= one_core.optimal <= 11
    assert 18 <= two_core.optimal <= 22


def test_latency_threshold_validation():
    with pytest.raises(EstimationError):
        SCTModel(latency_threshold=0.0)


def test_sla_met_when_plateau_fast():
    tuples = synthetic_curve(range(1, 41), kappa=2e-4)
    # RT at the knee ~ q/tp ~ 10/98 = 0.102; threshold above that
    est = model(latency_threshold=0.2).estimate(tuples)
    assert est.sla_met
    assert est.optimal == est.q_lower


def test_sla_violated_when_even_qlower_is_slow():
    tuples = synthetic_curve(range(1, 41), kappa=2e-4)
    est = model(latency_threshold=0.01).estimate(tuples)
    assert not est.sla_met


def test_no_threshold_defaults_to_met():
    tuples = synthetic_curve(range(1, 41), kappa=2e-4)
    est = model().estimate(tuples)
    assert est.sla_met
