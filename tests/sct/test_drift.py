"""Tests for capacity-curve drift detection."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.sct.drift import detect_drift
from repro.sct.tuples import MetricTuple


def curve(qs, tp_scale=1.0, a_sat=10.0, noise=0.03, n=20, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for q in qs:
        tp = 100.0 * tp_scale * min(q, a_sat) / a_sat
        for _ in range(n):
            out.append(
                MetricTuple(q, float(tp * (1 + rng.normal(0, noise))), 0.01,
                            min(1.0, q / a_sat))
            )
    return out


def test_stationary_window_not_flagged():
    old = curve(range(1, 20), seed=0)
    new = curve(range(1, 20), seed=1)
    report = detect_drift(old, new, bucket_width=1)
    assert not report.drifted
    assert report.direction == "none"
    assert "stationary" in report.describe()


def test_capacity_doubling_detected_as_up():
    old = curve(range(1, 20), tp_scale=1.0, seed=0)
    new = curve(range(1, 20), tp_scale=2.0, a_sat=20.0, seed=1)
    report = detect_drift(old, new, bucket_width=1)
    assert report.drifted
    assert report.direction == "up"
    # the ascending stage (q <= 10) is bit-identical after a core
    # doubling, so the mean shift over ALL shared bands is diluted;
    # what matters is that the shifted cluster is detected.
    assert report.mean_shift > 0.15
    assert report.shifted_bands >= 5
    assert "drift up" in report.describe()


def test_degradation_detected_as_down():
    old = curve(range(1, 20), tp_scale=1.0, seed=0)
    new = curve(range(1, 20), tp_scale=0.5, seed=1)
    report = detect_drift(old, new, bucket_width=1)
    assert report.drifted
    assert report.direction == "down"


def test_small_shift_below_threshold_ignored():
    old = curve(range(1, 20), tp_scale=1.00, seed=0)
    new = curve(range(1, 20), tp_scale=1.05, seed=1)  # 5% < min_shift 10%
    report = detect_drift(old, new, bucket_width=1)
    assert not report.drifted


def test_disjoint_concurrency_ranges_are_inconclusive():
    old = curve(range(1, 6), seed=0)
    new = curve(range(30, 36), seed=1)
    report = detect_drift(old, new, bucket_width=1)
    assert not report.drifted
    assert report.shared_bands == 0


def test_validation():
    with pytest.raises(EstimationError):
        detect_drift([], [], alpha=0.0)
    with pytest.raises(EstimationError):
        detect_drift([], [], min_shift=0.0)


def test_simulated_vertical_scale_is_detected():
    """End-to-end: scatter collected before vs after a server's cores
    double must register as upward drift."""
    from repro.experiments.calibration import db_capacity_cpu
    from repro.experiments.sweep import cap_ramp_scatter
    from repro.sct.tuples import tuples_from_samples
    from repro.workload.mixes import browse_only_mix
    from repro.experiments.calibration import Calibration

    cal = Calibration()
    mix = browse_only_mix(cal.base_demands)
    before, _ = cap_ramp_scatter(
        db_capacity_cpu(1.0), mix, q_max=30, q_step=2, dwell=1.5, seed=7
    )
    after, _ = cap_ramp_scatter(
        db_capacity_cpu(2.0), mix, q_max=30, q_step=2, dwell=1.5, seed=8
    )
    report = detect_drift(
        tuples_from_samples(before), tuples_from_samples(after)
    )
    assert report.drifted
    assert report.direction == "up"
