"""Tests for scatter trend lines."""

import numpy as np
import pytest

from repro.errors import EstimationError
from repro.sct.grouping import bucketize
from repro.sct.smoothing import trend_line
from repro.sct.tuples import MetricTuple


def make_buckets():
    tuples = []
    for q in range(1, 21):
        tp = 10.0 * min(q, 10)
        for _ in range(4):
            tuples.append(MetricTuple(q, tp, 0.001 * q, 1.0))
    return bucketize(tuples, min_samples=3, width=1)


def test_trend_passes_through_bucket_means():
    buckets = make_buckets()
    grid, values = trend_line(buckets, "tp")
    # at q=5 the curve should be ~50
    idx = int(np.argmin(np.abs(grid - 5.0)))
    assert values[idx] == pytest.approx(50.0, rel=0.05)


def test_trend_monotone_on_monotone_data():
    buckets = make_buckets()
    grid, values = trend_line(buckets, "rt")
    assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))


def test_trend_rejects_unknown_metric():
    with pytest.raises(EstimationError):
        trend_line(make_buckets(), "latency")


def test_trend_needs_two_points():
    tuples = [MetricTuple(5, 10.0, 0.01, 1.0)] * 4
    buckets = bucketize(tuples, min_samples=3, width=1)
    with pytest.raises(EstimationError):
        trend_line(buckets, "tp")


def test_trend_grid_bounds():
    grid, _ = trend_line(make_buckets(), "tp", points=50)
    assert grid[0] == 1.0
    assert grid[-1] == 20.0
    assert len(grid) == 50
