"""Tests for the Welch-based plateau detection."""

import numpy as np
import pytest

from repro.sct.grouping import bucketize
from repro.sct.intervention import plateau_pvalues, welch_t_pvalue
from repro.sct.tuples import MetricTuple


def test_clearly_lower_sample_is_significant():
    rng = np.random.default_rng(0)
    low = rng.normal(50, 5, 40)
    high = rng.normal(100, 5, 40)
    assert welch_t_pvalue(low, high) < 1e-6


def test_identical_distributions_not_significant():
    rng = np.random.default_rng(1)
    a = rng.normal(100, 10, 40)
    b = rng.normal(100, 10, 40)
    assert welch_t_pvalue(a, b) > 0.01


def test_higher_sample_has_large_pvalue():
    rng = np.random.default_rng(2)
    a = rng.normal(120, 5, 30)
    b = rng.normal(100, 5, 30)
    assert welch_t_pvalue(a, b) > 0.99


def test_tiny_samples_decided_by_mean():
    assert welch_t_pvalue([5.0], [10.0, 11.0]) == 0.0
    assert welch_t_pvalue([50.0], [10.0, 11.0]) == 1.0


def test_constant_samples_decided_by_mean():
    assert welch_t_pvalue([5.0, 5.0, 5.0], [9.0, 9.0, 9.0]) == 0.0
    assert welch_t_pvalue([9.0, 9.0], [9.0, 9.0]) == 1.0


def test_matches_scipy_reference():
    from scipy import stats

    rng = np.random.default_rng(3)
    a = rng.normal(10, 2, 25)
    b = rng.normal(11, 3, 18)
    ours = welch_t_pvalue(a, b)
    ref = stats.ttest_ind(a, b, equal_var=False, alternative="less").pvalue
    assert ours == pytest.approx(float(ref), abs=1e-12)


def test_plateau_pvalues_shape():
    rng = np.random.default_rng(4)
    tuples = []
    for q, mean in [(2, 20.0), (5, 50.0), (10, 100.0), (20, 99.0)]:
        tuples.extend(
            MetricTuple(q, float(v), 0.01, 1.0)
            for v in rng.normal(mean, 5, 30)
        )
    buckets = bucketize(tuples, min_samples=5, width=1)
    pvals = plateau_pvalues(buckets, peak_q=10)
    assert pvals[10] == 1.0
    assert pvals[2] < 0.001  # clearly below peak
    assert pvals[20] > 0.05  # statistically at the peak
