"""Tests for SCT metric tuples and concurrency grouping."""

import math

import pytest

from repro.monitoring.interval import IntervalSample
from repro.sct.grouping import band_representative, bucketize
from repro.sct.tuples import MetricTuple, tuples_from_samples


def sample(q, tp, rt=0.01, util=1.0, t=1.0):
    return IntervalSample(
        t_end=t, concurrency=q, throughput=tp, response_time=rt,
        completions=int(tp > 0), utilization={"cpu": util},
    )


# ----------------------------------------------------------------------
# tuples
# ----------------------------------------------------------------------

def test_idle_intervals_dropped():
    out = tuples_from_samples([sample(0.0, 0.0), sample(2.0, 10.0)])
    assert len(out) == 1
    assert out[0].q == 2.0


def test_zero_tp_with_concurrency_kept():
    """Stalled-server evidence must not be discarded."""
    out = tuples_from_samples([sample(5.0, 0.0, rt=math.nan)])
    assert len(out) == 1
    assert out[0].tp == 0.0


def test_util_takes_max_resource():
    s = IntervalSample(
        t_end=1.0, concurrency=3.0, throughput=5.0, response_time=0.01,
        completions=5, utilization={"cpu": 0.4, "disk": 0.9},
    )
    (t,) = tuples_from_samples([s])
    assert t.util == 0.9


# ----------------------------------------------------------------------
# banding
# ----------------------------------------------------------------------

def test_band_exact_below_base():
    for q in range(1, 17):
        assert band_representative(q) == q


def test_band_monotone_nondecreasing():
    reps = [band_representative(q) for q in range(1, 500)]
    assert all(a <= b for a, b in zip(reps, reps[1:]))


def test_band_groups_high_levels():
    reps = {band_representative(q) for q in range(60, 70)}
    assert len(reps) < 10  # several levels share a band


def test_band_representative_within_band():
    for q in (20, 40, 80, 200):
        rep = band_representative(q)
        assert abs(rep - q) / q < 0.15  # representative stays close


# ----------------------------------------------------------------------
# bucketize
# ----------------------------------------------------------------------

def tuples_at(q, n, tp=10.0, util=1.0):
    return [MetricTuple(q=q, tp=tp, rt=0.01, util=util) for _ in range(n)]


def test_min_samples_filter():
    tup = tuples_at(3, 2) + tuples_at(5, 4)
    buckets = bucketize(tup, min_samples=3, width=1)
    assert list(buckets) == [5]


def test_width_one_exact_levels():
    tup = tuples_at(3, 3) + tuples_at(4, 3)
    buckets = bucketize(tup, min_samples=3, width=1)
    assert sorted(buckets) == [3, 4]


def test_uniform_width_merges():
    tup = tuples_at(3, 2) + tuples_at(4, 2)
    buckets = bucketize(tup, min_samples=3, width=2)
    assert len(buckets) == 1
    (bucket,) = buckets.values()
    assert bucket.count == 4


def test_invalid_width():
    with pytest.raises(ValueError):
        bucketize([], width=0)


def test_bucket_statistics():
    tup = [MetricTuple(5, 10.0, 0.01, 1.0), MetricTuple(5, 14.0, 0.02, 0.8),
           MetricTuple(5, 12.0, math.nan, 0.9)]
    buckets = bucketize(tup, min_samples=3, width=1)
    b = buckets[5]
    assert b.mean_tp == pytest.approx(12.0)
    assert b.std_tp == pytest.approx(2.0)
    assert b.mean_rt == pytest.approx(0.015)  # NaN RT excluded
    assert b.mean_util == pytest.approx(0.9)


def test_bucket_mean_rt_all_nan():
    tup = [MetricTuple(5, 10.0, math.nan, 1.0)] * 3
    buckets = bucketize(tup, min_samples=3, width=1)
    assert math.isnan(buckets[5].mean_rt)


def test_fractional_concurrency_rounds():
    tup = tuples_at(4.6, 3)
    buckets = bucketize(tup, min_samples=3, width=1)
    assert list(buckets) == [5]


def test_sub_one_concurrency_clamps_to_one():
    tup = tuples_at(0.4, 3)
    buckets = bucketize(tup, min_samples=3, width=1)
    assert list(buckets) == [1]
