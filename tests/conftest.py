"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import pytest

from repro.ntier.app import NTierApplication, SoftResourceAllocation
from repro.ntier.capacity import CapacityModel, ContentionModel, Resource
from repro.ntier.server import Server, ServerConfig
from repro.rng import RngRegistry
from repro.sim.engine import Simulator
from repro.workload.mixes import WorkloadMix


def simple_capacity(
    a_sat: float = 10.0,
    cores: float = 1.0,
    sigma: float = 0.0,
    kappa: float = 0.0,
) -> CapacityModel:
    """A one-resource capacity model saturating at ``a_sat * cores``."""
    return CapacityModel(
        [Resource("cpu", cores, 1.0 / a_sat)],
        ContentionModel(sigma=sigma, kappa=kappa),
    )


def build_app(
    sim: Simulator,
    soft: SoftResourceAllocation | None = None,
    web_a_sat: float = 1000.0,
    app_a_sat: float = 1000.0,
    db_a_sat: float = 10.0,
    db_kappa: float = 0.0,
) -> NTierApplication:
    """A 1/1/1 application with an easily saturated DB tier."""
    soft = soft or SoftResourceAllocation(1000, 100, 50)
    app = NTierApplication(sim, soft)
    app.attach_server(
        Server(sim, ServerConfig("web-1", "web", simple_capacity(web_a_sat), soft.web_threads))
    )
    app.attach_server(
        Server(sim, ServerConfig("app-1", "app", simple_capacity(app_a_sat), soft.app_threads))
    )
    app.attach_server(
        Server(
            sim,
            ServerConfig(
                "db-1", "db", simple_capacity(db_a_sat, kappa=db_kappa), 100_000
            ),
        )
    )
    return app


def tiny_mix(
    web: float = 0.0005, app: float = 0.002, db: float = 0.005, cv: float = 0.0
) -> WorkloadMix:
    """A single-interaction deterministic-demand mix for exact checks."""
    return WorkloadMix(
        "tiny",
        {"ViewStory": 1.0},
        {"web": (web, cv), "app": (app, cv), "db": (db, cv)},
    )


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> RngRegistry:
    return RngRegistry(1234)
