"""Tests for the exact MVA solver against hand-computed and classical
results."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.qnet.mva import (
    DelayStation,
    LDStation,
    QueueingStation,
    solve_mva,
)


def test_single_station_n1():
    """One customer, one fixed station: X = 1/D, R = D."""
    res = solve_mva([QueueingStation("s", 0.1)], 1)
    x, r = res.at(1)
    assert x == pytest.approx(10.0)
    assert r == pytest.approx(0.1)


def test_single_station_heavy_load():
    """X(n) -> 1/D as n grows; R(n) -> n*D."""
    res = solve_mva([QueueingStation("s", 0.1)], 50)
    x, r = res.at(50)
    assert x == pytest.approx(10.0, rel=1e-6)
    assert r == pytest.approx(50 * 0.1, rel=0.03)


def test_two_station_hand_computation():
    """Classic textbook recursion, verified by hand for n=1,2.

    D1=1, D2=2:
      n=1: R1=1, R2=2, X=1/3, Q1=1/3, Q2=2/3
      n=2: R1=1*(1+1/3)=4/3, R2=2*(1+2/3)=10/3, X=2/(14/3)=3/7
    """
    res = solve_mva([QueueingStation("a", 1.0), QueueingStation("b", 2.0)], 2)
    x1, r1 = res.at(1)
    assert x1 == pytest.approx(1.0 / 3.0)
    assert r1 == pytest.approx(3.0)
    x2, r2 = res.at(2)
    assert x2 == pytest.approx(3.0 / 7.0)
    assert r2 == pytest.approx(14.0 / 3.0)


def test_delay_station_think_time():
    """With think time Z and one station: X(1) = 1/(D+Z)."""
    res = solve_mva(
        [QueueingStation("s", 0.1), DelayStation("think", 0.9)], 1
    )
    x, r = res.at(1)
    assert x == pytest.approx(1.0)
    assert r == pytest.approx(0.1)  # response excludes think


def test_ld_station_equals_fixed_for_unit_rates():
    """An LD station with rate(j)=1 is exactly a fixed station."""
    fixed = solve_mva([QueueingStation("s", 0.5)], 20)
    ld = solve_mva([LDStation("s", 0.5, lambda j: 1.0)], 20)
    assert np.allclose(fixed.throughput, ld.throughput)
    assert np.allclose(fixed.response_time, ld.response_time)


def test_ld_station_multi_server():
    """rate(j)=min(j,c) is an M/M/c-like station: with c=2 and two
    customers both can be served in parallel -> X(2) = 2/D."""
    res = solve_mva([LDStation("s", 1.0, lambda j: min(j, 2))], 2)
    x, r = res.at(2)
    assert x == pytest.approx(2.0)
    assert r == pytest.approx(1.0)


def test_ld_station_saturation():
    """rate(j)=min(j,c): X(n) -> c/D for n >> c."""
    res = solve_mva([LDStation("s", 0.1, lambda j: min(j, 4))], 60)
    x, _ = res.at(60)
    assert x == pytest.approx(40.0, rel=1e-3)


def test_queue_lengths_sum_to_population():
    stations = [
        QueueingStation("a", 1.0),
        LDStation("b", 0.5, lambda j: min(j, 2)),
        DelayStation("z", 2.0),
    ]
    res = solve_mva(stations, 15)
    for n in (1, 5, 15):
        total = sum(res.station_queue[s.name][n - 1] for s in stations)
        assert total == pytest.approx(n, rel=1e-6)


def test_throughput_monotone_in_population():
    res = solve_mva(
        [QueueingStation("a", 0.3), QueueingStation("b", 0.7)], 40
    )
    assert np.all(np.diff(res.throughput) >= -1e-12)


def test_validation_errors():
    with pytest.raises(ConfigurationError):
        solve_mva([], 5)
    with pytest.raises(ConfigurationError):
        solve_mva([QueueingStation("s", 0.1)], 0)
    with pytest.raises(ConfigurationError):
        solve_mva(
            [QueueingStation("s", 0.1), QueueingStation("s", 0.2)], 5
        )
    with pytest.raises(ConfigurationError):
        QueueingStation("s", 0.0)
    with pytest.raises(ConfigurationError):
        DelayStation("z", -1.0)
    with pytest.raises(ConfigurationError):
        solve_mva([LDStation("s", 0.1, lambda j: 0.0)], 3)
    res = solve_mva([QueueingStation("s", 0.1)], 3)
    with pytest.raises(ConfigurationError):
        res.at(4)
