"""Tests for exact multi-class MVA."""

import pytest

from repro.errors import ConfigurationError
from repro.qnet.multiclass import solve_mva_multiclass
from repro.qnet.mva import QueueingStation, solve_mva


def test_single_class_collapses_to_classic_mva():
    """With one class the multi-class recursion must equal the
    single-class solver at every shared point."""
    single = solve_mva(
        [QueueingStation("a", 1.0), QueueingStation("b", 2.0)], 4
    )
    for n in range(1, 5):
        multi = solve_mva_multiclass(
            ["a", "b"],
            {"c": {"a": 1.0, "b": 2.0}},
            {"c": n},
        )
        x_ref, r_ref = single.at(n)
        assert multi.throughput["c"] == pytest.approx(x_ref, rel=1e-12)
        assert multi.response_time["c"] == pytest.approx(r_ref, rel=1e-12)


def test_two_identical_classes_equal_one_merged_class():
    """Splitting a population into two identical classes must not
    change total throughput (symmetry sanity)."""
    merged = solve_mva_multiclass(
        ["a", "b"], {"c": {"a": 0.5, "b": 1.0}}, {"c": 6}
    )
    split = solve_mva_multiclass(
        ["a", "b"],
        {"c1": {"a": 0.5, "b": 1.0}, "c2": {"a": 0.5, "b": 1.0}},
        {"c1": 3, "c2": 3},
    )
    assert split.total_throughput() == pytest.approx(
        merged.total_throughput(), rel=1e-9
    )
    assert split.throughput["c1"] == pytest.approx(split.throughput["c2"])


def test_heavy_class_dominates_bottleneck():
    result = solve_mva_multiclass(
        ["cpu", "disk"],
        {
            "browse": {"cpu": 0.010, "disk": 0.001},
            "write": {"cpu": 0.002, "disk": 0.030},
        },
        {"browse": 10, "write": 10},
    )
    # writes hammer the disk -> disk holds the larger queue
    assert result.bottleneck() == "disk"
    # and the write class suffers the longer response time
    assert result.response_time["write"] > result.response_time["browse"]


def test_think_time_reduces_contention():
    base = solve_mva_multiclass(
        ["s"], {"c": {"s": 0.1}}, {"c": 10}
    )
    with_think = solve_mva_multiclass(
        ["s"], {"c": {"s": 0.1}}, {"c": 10}, think_times={"c": 5.0}
    )
    # with long think times the station is nearly uncontended
    assert with_think.response_time["c"] < base.response_time["c"]
    assert with_think.response_time["c"] == pytest.approx(0.1, rel=0.25)


def test_zero_population_class_is_inert():
    with_ghost = solve_mva_multiclass(
        ["s"], {"c": {"s": 0.1}, "ghost": {"s": 5.0}}, {"c": 5, "ghost": 0}
    )
    alone = solve_mva_multiclass(["s"], {"c": {"s": 0.1}}, {"c": 5})
    assert with_ghost.throughput["c"] == pytest.approx(
        alone.throughput["c"], rel=1e-12
    )
    assert with_ghost.throughput["ghost"] == 0.0


def test_queue_lengths_sum_to_population_without_think():
    result = solve_mva_multiclass(
        ["a", "b"],
        {"x": {"a": 0.4, "b": 0.2}, "y": {"a": 0.1, "b": 0.9}},
        {"x": 4, "y": 3},
    )
    assert sum(result.station_queue.values()) == pytest.approx(7.0, rel=1e-9)


def test_validation():
    with pytest.raises(ConfigurationError):
        solve_mva_multiclass([], {"c": {}}, {"c": 1})
    with pytest.raises(ConfigurationError):
        solve_mva_multiclass(["s"], {}, {})
    with pytest.raises(ConfigurationError):
        solve_mva_multiclass(["s"], {"c": {}}, {"c": 1})  # missing demand
    with pytest.raises(ConfigurationError):
        solve_mva_multiclass(["s"], {"c": {"s": -1.0}}, {"c": 1})
    with pytest.raises(ConfigurationError):
        solve_mva_multiclass(["s"], {"c": {"s": 0.1}}, {"c": 0})
    with pytest.raises(ConfigurationError):
        solve_mva_multiclass(["s", "s"], {"c": {"s": 0.1}}, {"c": 1})


def test_against_simulator_two_classes():
    """Two classes with different demands through one PS server: the
    multi-class prediction matches the DES simulator."""
    from repro.ntier.capacity import CapacityModel, ContentionModel, Resource
    from repro.ntier.request import Request
    from repro.ntier.server import Server, ServerConfig
    from repro.sim.engine import Simulator

    d = {"fast": 0.01, "slow": 0.04}
    n = {"fast": 4, "slow": 2}
    sim = Simulator()
    capacity = CapacityModel([Resource("cpu", 1.0, 1.0)], ContentionModel())
    server = Server(sim, ServerConfig("s", "db", capacity, 10_000))
    counts = {"fast": 0, "slow": 0}
    state = {"next_id": 0}

    def loop(cls):
        def issue():
            req = Request(state["next_id"], "X", sim.now, {"db": d[cls]})
            state["next_id"] += 1
            server.admit(
                req, lambda r: server.work(r, d[cls], done)
            )

        def done(r):
            server.release(r)
            counts[cls] += 1
            issue()

        return issue

    for cls, pop in n.items():
        for _ in range(pop):
            sim.schedule(0.0, loop(cls))
    duration = 60.0
    sim.run(until=duration)

    prediction = solve_mva_multiclass(["s"], {
        "fast": {"s": d["fast"]}, "slow": {"s": d["slow"]},
    }, n)
    for cls in n:
        x_sim = counts[cls] / duration
        assert x_sim == pytest.approx(prediction.throughput[cls], rel=0.05), (
            f"{cls}: sim {x_sim:.1f}/s vs MVA {prediction.throughput[cls]:.1f}/s"
        )
