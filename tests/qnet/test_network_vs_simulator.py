"""Cross-validation: the analytical MVA network vs the DES simulator.

With zero contention penalties (sigma = kappa = 0) the simulated 3-tier
system is a product-form closed network — PS stations with
load-dependent rates ``min(j, a_sat)`` — so exact MVA must predict the
simulator's closed-loop throughput and response time. This is a strong
mutual-correctness check: two completely independent implementations
(an event-driven PS simulator and a probabilistic recursion) must
agree.
"""

import pytest

from repro.ntier.capacity import CapacityModel, ContentionModel, Resource
from repro.qnet.network import asymptotic_bounds, predict_closed_loop
from repro.rng import RngRegistry
from repro.sim.engine import Simulator
from repro.workload.generator import ClosedLoopGenerator, RequestFactory

from tests.conftest import build_app, tiny_mix

DEMANDS = {"web": 0.0005, "app": 0.002, "db": 0.005}


def pure_capacity(a_sat: float) -> CapacityModel:
    return CapacityModel(
        [Resource("cpu", 1.0, 1.0 / a_sat)], ContentionModel(0.0, 0.0)
    )


CAPACITIES = {
    "web": pure_capacity(1000.0),
    "app": pure_capacity(8.0),
    "db": pure_capacity(4.0),
}


def simulate(n: int, think: float, duration: float = 40.0, seed: int = 11):
    sim = Simulator()
    app = build_app(sim, web_a_sat=1000.0, app_a_sat=8.0, db_a_sat=4.0)
    rng = RngRegistry(seed)
    latencies = []
    app.on_complete(lambda r: latencies.append(r.response_time))
    ClosedLoopGenerator(
        sim, app, n, RequestFactory(tiny_mix(cv=0.3), rng.stream("d")),
        rng.stream("u"), think_time=think,
    ).start()
    sim.run(until=duration)
    warm = len(latencies) // 5
    x = app.completed / duration
    r = sum(latencies[warm:]) / max(1, len(latencies[warm:]))
    return x, r


@pytest.mark.parametrize("n", [2, 6, 12, 30])
def test_mva_matches_simulator_zero_think(n):
    prediction = predict_closed_loop(CAPACITIES, DEMANDS, n_max=n)
    x_mva, r_mva = prediction.result.at(n)
    x_sim, r_sim = simulate(n, think=0.0)
    assert x_sim == pytest.approx(x_mva, rel=0.05), (
        f"n={n}: sim X={x_sim:.1f}/s vs MVA {x_mva:.1f}/s"
    )
    assert r_sim == pytest.approx(r_mva, rel=0.08), (
        f"n={n}: sim R={r_sim * 1000:.2f}ms vs MVA {r_mva * 1000:.2f}ms"
    )


def test_mva_matches_simulator_with_think_time():
    n, think = 40, 0.05
    prediction = predict_closed_loop(CAPACITIES, DEMANDS, n_max=n, think_time=think)
    x_mva, r_mva = prediction.result.at(n)
    x_sim, r_sim = simulate(n, think=think, duration=60.0)
    assert x_sim == pytest.approx(x_mva, rel=0.05)
    assert r_sim == pytest.approx(r_mva, rel=0.10)


def test_bottleneck_identification():
    prediction = predict_closed_loop(CAPACITIES, DEMANDS, n_max=5)
    # db: a_sat 4 / 5ms = 800/s; app: 8 / 2ms = 4000/s -> db bottleneck
    assert prediction.bottleneck == "db"
    assert prediction.peak_throughput == pytest.approx(800.0)


def test_throughput_approaches_bottleneck_capacity():
    prediction = predict_closed_loop(CAPACITIES, DEMANDS, n_max=80)
    x, _ = prediction.result.at(80)
    assert x == pytest.approx(800.0, rel=0.01)


def test_asymptotic_bounds_hold():
    prediction = predict_closed_loop(CAPACITIES, DEMANDS, n_max=50)
    for n in (1, 5, 20, 50):
        light, heavy = asymptotic_bounds(DEMANDS, CAPACITIES, n)
        x, _ = prediction.result.at(n)
        assert x <= min(light, heavy) * (1 + 1e-9)


def test_key_mismatch_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        predict_closed_loop(CAPACITIES, {"web": 0.001}, n_max=5)
