"""Chaos testing: random scaling churn under live load.

Property: whatever sequence of scale-out / scale-in / vertical /
soft-resize actions the controller machinery performs while requests
are flowing, the system must conserve requests (everything submitted
eventually completes once the load stops), keep pool accounting
consistent, and never throw. This is the class of bug (drain races,
pool resize vs in-flight grants, capacity swaps mid-PS-phase) that
point tests miss.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cloud.hypervisor import Hypervisor
from repro.faults.injector import apply_slowdown, remove_slowdown
from repro.monitoring.warehouse import MetricWarehouse
from repro.ntier.app import APP, DB, WEB, NTierApplication, SoftResourceAllocation
from repro.rng import RngRegistry
from repro.scaling.actions import ActionLog
from repro.scaling.actuator import Actuator
from repro.scaling.factory import ServerFactory
from repro.sim.engine import Simulator
from repro.workload.generator import ClosedLoopGenerator, RequestFactory

from tests.conftest import simple_capacity, tiny_mix


ACTIONS = st.lists(
    st.tuples(
        st.floats(0.5, 25.0),  # when
        st.sampled_from([
            "out_app", "out_db", "in_app", "in_db", "up_db",
            "threads_app", "conns", "web_threads",
            "crash_app", "crash_db", "slow_db",
        ]),
        st.integers(2, 80),  # soft value when applicable
    ),
    min_size=1,
    max_size=12,
)


def build_stack():
    sim = Simulator()
    soft = SoftResourceAllocation(200, 30, 20)
    app = NTierApplication(sim, soft)
    factory = ServerFactory(sim)
    factory.set_template(WEB, simple_capacity(1000), soft.web_threads)
    factory.set_template(APP, simple_capacity(50), soft.app_threads)
    factory.set_template(DB, simple_capacity(10, kappa=1e-4), 100_000)
    hv = Hypervisor(sim, prep_period=2.0)
    wh = MetricWarehouse(sim, fine_interval=0.5)
    actuator = Actuator(sim, app, hv, factory, wh, ActionLog())
    for tier in (WEB, APP, DB):
        actuator.bootstrap(tier, 1)
    return sim, app, actuator


def _crash(actuator, app, tier, value):
    servers = sorted(app.tiers[tier].servers, key=lambda s: s.name)
    if servers:
        actuator.crash_server(servers[value % len(servers)].name)


def _slow_episode(sim, app, value):
    """A short multiplicative degradation with a crash-tolerant restore."""
    servers = sorted(app.tiers[DB].servers, key=lambda s: s.name)
    if not servers:
        return
    name = servers[value % len(servers)].name
    apply_slowdown(servers[value % len(servers)], 4.0)

    def _restore():
        target = next(
            (s for s in app.tiers[DB].all_instances() if s.name == name), None
        )
        if target is not None:
            remove_slowdown(target, 4.0)

    sim.schedule_after(3.0, _restore)


def apply_action(sim, actuator, app, kind, value):
    from repro.errors import FaultError, ScalingError

    try:
        if kind == "out_app":
            actuator.scale_out(APP)
        elif kind == "out_db":
            actuator.scale_out(DB)
        elif kind == "in_app":
            actuator.scale_in(APP)
        elif kind == "in_db":
            actuator.scale_in(DB)
        elif kind == "up_db":
            actuator.scale_up(DB, factor=2.0, max_vcpus=4.0)
        elif kind == "threads_app":
            actuator.set_app_threads(value)
        elif kind == "conns":
            actuator.set_db_connections(value)
        elif kind == "web_threads":
            actuator.set_web_threads(max(50, value))
        elif kind == "crash_app":
            _crash(actuator, app, APP, value)
        elif kind == "crash_db":
            _crash(actuator, app, DB, value)
        elif kind == "slow_db":
            _slow_episode(sim, app, value)
    except (ScalingError, FaultError):
        # e.g. draining or crashing the last server — a legal refusal,
        # not a bug
        pass


@given(ACTIONS)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_scaling_churn_conserves_requests(actions):
    sim, app, actuator = build_stack()
    rng = RngRegistry(99)
    gen = ClosedLoopGenerator(
        sim, app, 25,
        RequestFactory(tiny_mix(web=0.0005, app=0.004, db=0.02), rng.stream("d")),
        rng.stream("u"), think_time=0.0,
    )
    gen.start()
    for when, kind, value in actions:
        sim.schedule(when, apply_action, sim, actuator, app, kind, value)
    sim.run(until=30.0)
    gen.stop()
    sim.run(until=90.0)  # drain everything, including draining servers

    # conservation: every submitted request completed or was failed by
    # a crash — nothing is silently lost
    assert app.in_flight == 0
    assert app.completed + app.failed == app.submitted
    assert app.completed > 100

    # pool accounting: nothing left holding permits or queued
    for tier in (WEB, APP, DB):
        for server in app.tiers[tier].all_instances():
            assert server.admitted == 0
            assert server.threads.in_use == 0
            assert server.threads.queued == 0
    for pool in app.conn_pools.values():
        assert pool.in_use == 0
        assert pool.queued == 0

    # every live app server has a conn pool and vice versa
    live_app = {s.name for s in app.tiers[APP].servers}
    draining_app = {s.name for s in app.tiers[APP].draining}
    assert live_app | draining_app <= set(app.conn_pools) | draining_app
    # topology sane
    assert app.tiers[WEB].size >= 1
    assert app.tiers[APP].size >= 1
    assert app.tiers[DB].size >= 1


def test_scale_in_under_heavy_load_loses_nothing():
    """Directed version of the property: drain the busier replica while
    the system is saturated."""
    sim, app, actuator = build_stack()
    rng = RngRegistry(5)
    gen = ClosedLoopGenerator(
        sim, app, 60,
        RequestFactory(tiny_mix(db=0.02), rng.stream("d")),
        rng.stream("u"), think_time=0.0,
    )
    gen.start()
    sim.schedule(1.0, actuator.scale_out, DB)
    sim.schedule(6.0, actuator.scale_in, DB)
    sim.schedule(8.0, actuator.scale_out, DB)
    sim.schedule(14.0, actuator.scale_in, DB)
    sim.run(until=20.0)
    gen.stop()
    sim.run(until=60.0)
    assert app.in_flight == 0
    assert app.completed == app.submitted
    assert app.tiers[DB].draining == []


def test_crash_during_drain_cancels_poll_and_conserves():
    """A draining server dying mid-drain must cancel its drain poll
    (no FaultError from a poll on a vanished server), fail its
    stragglers, and leave clean accounting."""
    sim, app, actuator = build_stack()
    rng = RngRegistry(17)
    gen = ClosedLoopGenerator(
        sim, app, 40,
        RequestFactory(tiny_mix(db=0.02), rng.stream("d")),
        rng.stream("u"), think_time=0.0,
    )
    gen.start()
    sim.schedule(1.0, actuator.scale_out, DB)
    sim.schedule(6.0, actuator.scale_in, DB)

    crashed = {}

    def _crash_draining():
        draining = app.tiers[DB].draining
        assert draining, "drain should still be in progress"
        crashed["victims"] = len(actuator.crash_server(draining[0].name))

    sim.schedule(6.05, _crash_draining)
    sim.run(until=20.0)
    gen.stop()
    sim.run(until=60.0)
    assert "victims" in crashed  # the crash really hit a draining server
    assert app.failed == crashed["victims"]
    assert app.completed + app.failed == app.submitted
    assert app.in_flight == 0
    assert app.tiers[DB].size == 1
    assert app.tiers[DB].draining == []
    assert not actuator.action_in_flight(DB)


def test_slow_node_during_scale_up_composes():
    """Vertical scaling mid-degradation: after the episode ends the
    server's capacity must equal original x scale_up factor exactly."""
    sim, app, actuator = build_stack()
    state = {}

    def _degrade():
        target = app.tiers[DB].servers[0]
        state["target"] = target
        state["original"] = target.capacity.resource("cpu").units
        apply_slowdown(target, 4.0)

    sim.schedule(1.0, _degrade)
    sim.schedule(2.0, actuator.scale_up, DB, 2.0, 8.0)
    sim.schedule(10.0, lambda: remove_slowdown(state["target"], 4.0))
    sim.run(until=20.0)
    assert abs(
        state["target"].capacity.resource("cpu").units
        - state["original"] * 2.0
    ) < 1e-9
