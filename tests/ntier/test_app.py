"""Tests for the 3-tier application flow."""

import pytest

from repro.errors import ConfigurationError
from repro.ntier.app import APP, DB, WEB, NTierApplication, SoftResourceAllocation
from repro.ntier.request import Request
from repro.sim.engine import Simulator

from tests.conftest import build_app


def make_request(req_id=0, web=0.001, app=0.002, db=0.005):
    return Request(
        req_id=req_id, interaction="X", arrival=0.0,
        demands={"web": web, "app": app, "db": db},
    )


def test_soft_allocation_validation():
    with pytest.raises(ConfigurationError):
        SoftResourceAllocation(web_threads=0)
    with pytest.raises(ConfigurationError):
        SoftResourceAllocation(db_connections=0)


def test_soft_allocation_for_tier():
    soft = SoftResourceAllocation(100, 60, 40)
    assert soft.for_tier(WEB) == 100
    assert soft.for_tier(APP) == 60
    assert soft.for_tier(DB) > 1000  # MySQL effectively unbounded
    with pytest.raises(ConfigurationError):
        soft.for_tier("queue")


def test_single_request_completes_with_sum_of_demands():
    sim = Simulator()
    app = build_app(sim)
    req = make_request()
    done = []
    app.on_complete(done.append)
    sim.schedule(0.0, app.submit, req)
    sim.run()
    assert done == [req]
    # alone in the system: latency == web + app + db demands
    assert req.response_time == pytest.approx(0.001 + 0.002 + 0.005)


def test_request_visits_all_three_tiers():
    sim = Simulator()
    app = build_app(sim)
    req = make_request()
    sim.schedule(0.0, app.submit, req)
    sim.run()
    assert [v.server_name for v in req.visits] == ["web-1", "app-1", "db-1"]
    # nesting: web visit spans app visit spans db visit
    web_v, app_v, db_v = req.visits
    assert web_v.arrival <= app_v.arrival <= db_v.arrival
    assert db_v.departure <= app_v.departure <= web_v.departure


def test_counters_and_in_flight():
    sim = Simulator()
    app = build_app(sim)
    sim.schedule(0.0, app.submit, make_request(0))
    sim.schedule(0.0, app.submit, make_request(1))
    assert app.in_flight == 0
    sim.run()
    assert app.submitted == 2
    assert app.completed == 2
    assert app.in_flight == 0


def test_conn_pool_caps_db_concurrency():
    sim = Simulator()
    soft = SoftResourceAllocation(1000, 100, 2)  # 2 DB connections
    app = build_app(sim, soft=soft, db_a_sat=100)
    peak = {"db": 0}
    db = app.tiers[DB].servers[0]

    def watch(r):
        peak["db"] = max(peak["db"], db.admitted)

    app.on_complete(watch)
    for i in range(10):
        sim.schedule(0.0, app.submit, make_request(i, db=0.05))
    # sample db concurrency shortly after start
    sim.schedule(0.01, lambda: peak.__setitem__("db", max(peak["db"], db.admitted)))
    sim.run()
    assert peak["db"] <= 2
    assert app.completed == 10


def test_app_threads_cap_app_concurrency():
    sim = Simulator()
    soft = SoftResourceAllocation(1000, 3, 50)
    app = build_app(sim, soft=soft)
    ap = app.tiers[APP].servers[0]
    observed = []
    for i in range(12):
        sim.schedule(0.0, app.submit, make_request(i, app=0.05))
    sim.schedule(0.02, lambda: observed.append(ap.admitted))
    sim.run()
    assert observed and max(observed) <= 3
    assert app.completed == 12


def test_topology():
    sim = Simulator()
    app = build_app(sim)
    assert app.topology() == (1, 1, 1)


def test_admission_pressure_db():
    sim = Simulator()
    soft = SoftResourceAllocation(1000, 100, 1)
    app = build_app(sim, soft=soft)
    for i in range(5):
        sim.schedule(0.0, app.submit, make_request(i, db=1.0))
    sim.run(until=0.01)
    queued, capacity = app.admission_pressure(DB)
    assert capacity == 1
    assert queued >= 3


def test_admission_pressure_app():
    sim = Simulator()
    soft = SoftResourceAllocation(1000, 2, 50)
    app = build_app(sim, soft=soft)
    for i in range(6):
        sim.schedule(0.0, app.submit, make_request(i, app=1.0))
    sim.run(until=0.01)
    queued, capacity = app.admission_pressure(APP)
    assert capacity == 2
    assert queued >= 3


def test_admission_pressure_unknown_tier():
    sim = Simulator()
    app = build_app(sim)
    with pytest.raises(ConfigurationError):
        app.admission_pressure("queue")


def test_attach_unknown_tier_rejected():
    from repro.ntier.server import Server, ServerConfig
    from tests.conftest import simple_capacity

    sim = Simulator()
    app = NTierApplication(sim)
    bad = Server(sim, ServerConfig("q-1", "queue", simple_capacity(), 10))
    with pytest.raises(ConfigurationError):
        app.attach_server(bad)


def test_multiple_app_servers_get_own_conn_pools():
    from repro.ntier.server import Server, ServerConfig
    from tests.conftest import simple_capacity

    sim = Simulator()
    app = build_app(sim)
    extra = Server(sim, ServerConfig("app-2", APP, simple_capacity(1000), 100))
    app.attach_server(extra, db_connections=7)
    assert set(app.conn_pools) == {"app-1", "app-2"}
    assert app.conn_pools["app-2"].limit == 7
    app.detach_conn_pool("app-2")
    assert set(app.conn_pools) == {"app-1"}
