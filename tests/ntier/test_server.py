"""Tests for the processor-sharing server."""

import pytest

from repro.errors import SimulationError
from repro.ntier.capacity import CapacityModel, ContentionModel, Resource
from repro.ntier.request import Request
from repro.ntier.server import Server, ServerConfig
from repro.sim.engine import Simulator


def make_server(sim, a_sat=10.0, sigma=0.0, kappa=0.0, threads=100):
    cap = CapacityModel(
        [Resource("cpu", 1.0, 1.0 / a_sat)], ContentionModel(sigma, kappa)
    )
    return Server(sim, ServerConfig("s-1", "db", cap, threads))


def make_request(req_id=0, demand=1.0):
    return Request(req_id=req_id, interaction="X", arrival=0.0, demands={"db": demand})


def run_one(sim, server, req, demand):
    done = []
    server.admit(req, lambda r: server.work(r, demand, done.append))
    return done


def test_single_job_runs_at_unit_rate():
    sim = Simulator()
    server = make_server(sim)
    req = make_request()
    done = run_one(sim, server, req, demand=2.0)
    sim.run()
    assert done == [req]
    assert sim.now == pytest.approx(2.0)


def test_two_jobs_below_saturation_run_in_parallel():
    """Below a_sat each PS job progresses at full speed."""
    sim = Simulator()
    server = make_server(sim, a_sat=10)
    done = []
    for i in range(2):
        req = make_request(i)
        server.admit(req, lambda r: server.work(r, 1.0, done.append))
    sim.run()
    assert len(done) == 2
    assert sim.now == pytest.approx(1.0)


def test_jobs_beyond_saturation_share_capacity():
    """20 unit jobs on an a_sat=10 server take 2 time units."""
    sim = Simulator()
    server = make_server(sim, a_sat=10)
    done = []
    for i in range(20):
        server.admit(make_request(i), lambda r: server.work(r, 1.0, done.append))
    sim.run()
    assert len(done) == 20
    assert sim.now == pytest.approx(2.0)


def test_unequal_demands_finish_in_demand_order():
    sim = Simulator()
    server = make_server(sim, a_sat=1)  # full PS sharing between 2 jobs
    finished = []
    server.admit(
        make_request(0), lambda r: server.work(r, 1.0, lambda x: finished.append((x.req_id, sim.now)))
    )
    server.admit(
        make_request(1), lambda r: server.work(r, 2.0, lambda x: finished.append((x.req_id, sim.now)))
    )
    sim.run()
    # job 0 finishes at t=2 (rate 1/2 each); then job 1 alone finishes
    # its remaining 1.0 at t=3.
    assert finished == [(0, pytest.approx(2.0)), (1, pytest.approx(3.0))]


def test_thread_pool_queues_admissions():
    sim = Simulator()
    server = make_server(sim, a_sat=10, threads=1)
    order = []

    def flow(r):
        server.work(r, 1.0, finish)

    def finish(r):
        order.append((r.req_id, sim.now))
        server.release(r)

    server.admit(make_request(0), flow)
    server.admit(make_request(1), flow)
    sim.run()
    assert order == [(0, pytest.approx(1.0)), (1, pytest.approx(2.0))]


def test_admitted_and_active_counters():
    sim = Simulator()
    server = make_server(sim, a_sat=10)
    req = make_request()
    server.admit(req, lambda r: None)  # admitted but never active
    assert server.admitted == 1
    assert server.active == 0
    server.work(req, 1.0, lambda r: None)
    assert server.active == 1
    sim.run()
    assert server.active == 0
    assert server.admitted == 1  # still holds its thread
    server.release(req)
    assert server.admitted == 0
    assert server.is_idle


def test_blocked_requests_slow_active_ones():
    """Admitted-but-blocked requests add contention overhead."""
    sim = Simulator()
    server = make_server(sim, a_sat=10, sigma=0.1)
    blockers = [make_request(100 + i) for i in range(10)]
    for b in blockers:
        server.admit(b, lambda r: None)  # hold threads, no work
    done_at = []
    server.admit(make_request(0), lambda r: server.work(r, 1.0, lambda x: done_at.append(sim.now)))
    sim.run()
    # penalty(11) = 1/(1+0.1*10) = 0.5 -> the unit job takes 2 time units
    assert done_at == [pytest.approx(2.0)]


def test_work_without_admit_raises():
    sim = Simulator()
    server = make_server(sim)
    with pytest.raises(SimulationError):
        server.work(make_request(), 1.0, lambda r: None)


def test_release_without_admit_raises():
    sim = Simulator()
    server = make_server(sim)
    with pytest.raises(SimulationError):
        server.release(make_request())


def test_zero_demand_completes_via_event():
    sim = Simulator()
    server = make_server(sim)
    done = []
    server.admit(make_request(), lambda r: server.work(r, 0.0, done.append))
    assert done == []  # not synchronous
    sim.run()
    assert len(done) == 1
    assert sim.now == 0.0


def test_visit_latency_recorded_on_release():
    sim = Simulator()
    server = make_server(sim)
    req = make_request()

    def flow(r):
        server.work(r, 1.5, lambda x: server.release(x))

    server.admit(req, flow)
    sim.run()
    assert server.completions == 1
    assert server.latency_total == pytest.approx(1.5)
    assert req.visits[0].latency == pytest.approx(1.5)


def test_concurrency_integral_time_weighted():
    sim = Simulator()
    server = make_server(sim, a_sat=10)
    req = make_request()
    server.admit(req, lambda r: server.work(r, 2.0, lambda x: server.release(x)))
    sim.run()
    server.sync_monitors()
    # one request admitted for 2 time units
    assert server.concurrency_integral == pytest.approx(2.0)
    assert server.active_integral == pytest.approx(2.0)


def test_util_integral_accumulates():
    sim = Simulator()
    server = make_server(sim, a_sat=10)
    req = make_request()
    server.admit(req, lambda r: server.work(r, 2.0, lambda x: server.release(x)))
    sim.run()
    server.sync_monitors()
    # one active request on an a_sat=10 server => util 0.1 for 2 units
    assert server.util_integral["cpu"] == pytest.approx(0.2)


def test_many_sequential_batches_conserve_work():
    """Total served work equals total injected work across batches."""
    sim = Simulator()
    server = make_server(sim, a_sat=4)
    done = []

    def flow(r):
        server.work(r, 0.5, lambda x: (server.release(x), done.append(x.req_id)))

    for i in range(40):
        sim.schedule(i * 0.05, server.admit, make_request(i), flow)
    sim.run()
    assert len(done) == 40
    assert server.work_completions == 40
    # 40 jobs * 0.5 work at max rate 4 -> at least 5 time units
    assert sim.now >= 5.0 - 1e-9


def test_outstanding_counts_admitted_and_queued():
    """`outstanding` is the balancer's connection-count view: requests
    holding a worker thread plus requests queued for one."""
    sim = Simulator()
    server = make_server(sim, a_sat=10, threads=2)
    for i in range(5):
        req = make_request(i)
        server.admit(req, lambda r: server.work(r, 1.0, server.release))
    assert server.outstanding == 5          # 2 admitted + 3 queued
    assert server.admitted == 2
    sim.run()
    assert server.outstanding == 0
    assert server.is_idle


def test_ps_completions_identical_across_calendars():
    """The tuple-keyed completion heap plus the reschedule fast path
    must not change *when* any job finishes vs the heap calendar."""
    results = {}
    for calendar in ("wheel", "heap"):
        sim = Simulator(calendar=calendar)
        server = make_server(sim, a_sat=4, sigma=3e-3, kappa=2e-4)
        done = []

        def flow(r):
            server.work(r, 0.4, lambda x: (server.release(x), done.append((x.req_id, sim.now))))

        for i in range(30):
            sim.schedule(i * 0.07, server.admit, make_request(i), flow)
        sim.run()
        results[calendar] = (done, sim.events_executed)
    assert results["wheel"] == results["heap"]
