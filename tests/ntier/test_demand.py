"""Tests for the service-demand model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ntier.demand import DemandProfile, TierDemand


def test_tier_demand_validation():
    with pytest.raises(ConfigurationError):
        TierDemand(mean=0.0)
    with pytest.raises(ConfigurationError):
        TierDemand(mean=0.01, cv=-0.5)


def test_effective_mean_dataset_scaling():
    td = TierDemand(mean=0.01, dataset_exponent=1.0)
    assert td.effective_mean(2.0) == pytest.approx(0.02)
    td = TierDemand(mean=0.01, dataset_exponent=0.0)
    assert td.effective_mean(5.0) == pytest.approx(0.01)
    td = TierDemand(mean=0.01, dataset_exponent=0.5)
    assert td.effective_mean(4.0) == pytest.approx(0.02)


def test_effective_mean_rejects_bad_scale():
    with pytest.raises(ConfigurationError):
        TierDemand(mean=0.01).effective_mean(0.0)


def _profile(cv=0.3):
    return DemandProfile(
        interaction="X",
        tiers={
            "web": TierDemand(mean=0.001, cv=cv),
            "db": TierDemand(mean=0.010, cv=cv, dataset_exponent=1.0),
        },
    )


def test_draw_deterministic_when_cv_zero():
    rng = np.random.default_rng(0)
    out = _profile(cv=0.0).draw(rng)
    assert out == {"web": 0.001, "db": 0.010}


def test_draw_respects_demand_scale():
    rng = np.random.default_rng(0)
    out = _profile(cv=0.0).draw(rng, demand_scale=25.0)
    assert out["db"] == pytest.approx(0.25)


def test_draw_respects_dataset_scale():
    rng = np.random.default_rng(0)
    out = _profile(cv=0.0).draw(rng, dataset_scale=2.0)
    assert out["db"] == pytest.approx(0.020)
    assert out["web"] == pytest.approx(0.001)  # exponent 0


def test_draw_statistics_match_configuration():
    rng = np.random.default_rng(42)
    profile = _profile(cv=0.4)
    draws = np.array([profile.draw(rng)["db"] for _ in range(4000)])
    assert draws.mean() == pytest.approx(0.010, rel=0.05)
    assert draws.std() / draws.mean() == pytest.approx(0.4, rel=0.10)
    assert (draws > 0).all()


def test_unknown_distribution_rejected():
    with pytest.raises(ConfigurationError, match="distribution"):
        DemandProfile(
            interaction="X",
            tiers={"db": TierDemand(mean=0.01)},
            distribution="pareto",
        )


def test_gamma_default_draws_unchanged():
    """The ``distribution`` field defaults to gamma and must reproduce
    the historical draws bit-for-bit (byte-identity contract)."""
    a = _profile(cv=0.3).draw(np.random.default_rng(7))
    explicit = DemandProfile(
        interaction="X",
        tiers={
            "web": TierDemand(mean=0.001, cv=0.3),
            "db": TierDemand(mean=0.010, cv=0.3, dataset_exponent=1.0),
        },
        distribution="gamma",
    )
    b = explicit.draw(np.random.default_rng(7))
    assert a == b
    rng = np.random.default_rng(7)
    shape = 1.0 / 0.3**2
    assert a["web"] == float(rng.gamma(shape, 0.001 / shape))


def _lognormal_profile(cv):
    return DemandProfile(
        interaction="X",
        tiers={"db": TierDemand(mean=0.010, cv=cv)},
        distribution="lognormal",
    )


def test_lognormal_moments_match_configuration():
    rng = np.random.default_rng(42)
    profile = _lognormal_profile(cv=0.5)
    draws = np.array([profile.draw(rng)["db"] for _ in range(8000)])
    assert draws.mean() == pytest.approx(0.010, rel=0.03)
    assert draws.std() / draws.mean() == pytest.approx(0.5, rel=0.10)
    assert (draws > 0).all()


def test_lognormal_tail_heavier_than_gamma():
    """Same mean and cv, but the lognormal's right tail dominates —
    checked on the exact quantile functions, not samples."""
    from scipy import stats

    cv, mean = 0.8, 0.010
    shape = 1.0 / cv**2
    sigma_sq = np.log1p(cv * cv)
    mu = np.log(mean) - sigma_sq / 2
    q = 0.9999
    gamma_q = stats.gamma.ppf(q, shape, scale=mean / shape)
    logn_q = stats.lognorm.ppf(q, sigma_sq**0.5, scale=np.exp(mu))
    assert logn_q > gamma_q


def test_lognormal_cv_zero_is_deterministic():
    rng = np.random.default_rng(0)
    out = _lognormal_profile(cv=0.0).draw(rng)
    assert out == {"db": 0.010}


def test_mean_demand_lookup():
    profile = _profile()
    assert profile.mean_demand("db") == pytest.approx(0.010)
    assert profile.mean_demand("db", dataset_scale=3.0) == pytest.approx(0.030)
    with pytest.raises(ConfigurationError):
        profile.mean_demand("cache")
