"""Tests for the service-demand model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ntier.demand import DemandProfile, TierDemand


def test_tier_demand_validation():
    with pytest.raises(ConfigurationError):
        TierDemand(mean=0.0)
    with pytest.raises(ConfigurationError):
        TierDemand(mean=0.01, cv=-0.5)


def test_effective_mean_dataset_scaling():
    td = TierDemand(mean=0.01, dataset_exponent=1.0)
    assert td.effective_mean(2.0) == pytest.approx(0.02)
    td = TierDemand(mean=0.01, dataset_exponent=0.0)
    assert td.effective_mean(5.0) == pytest.approx(0.01)
    td = TierDemand(mean=0.01, dataset_exponent=0.5)
    assert td.effective_mean(4.0) == pytest.approx(0.02)


def test_effective_mean_rejects_bad_scale():
    with pytest.raises(ConfigurationError):
        TierDemand(mean=0.01).effective_mean(0.0)


def _profile(cv=0.3):
    return DemandProfile(
        interaction="X",
        tiers={
            "web": TierDemand(mean=0.001, cv=cv),
            "db": TierDemand(mean=0.010, cv=cv, dataset_exponent=1.0),
        },
    )


def test_draw_deterministic_when_cv_zero():
    rng = np.random.default_rng(0)
    out = _profile(cv=0.0).draw(rng)
    assert out == {"web": 0.001, "db": 0.010}


def test_draw_respects_demand_scale():
    rng = np.random.default_rng(0)
    out = _profile(cv=0.0).draw(rng, demand_scale=25.0)
    assert out["db"] == pytest.approx(0.25)


def test_draw_respects_dataset_scale():
    rng = np.random.default_rng(0)
    out = _profile(cv=0.0).draw(rng, dataset_scale=2.0)
    assert out["db"] == pytest.approx(0.020)
    assert out["web"] == pytest.approx(0.001)  # exponent 0


def test_draw_statistics_match_configuration():
    rng = np.random.default_rng(42)
    profile = _profile(cv=0.4)
    draws = np.array([profile.draw(rng)["db"] for _ in range(4000)])
    assert draws.mean() == pytest.approx(0.010, rel=0.05)
    assert draws.std() / draws.mean() == pytest.approx(0.4, rel=0.10)
    assert (draws > 0).all()


def test_mean_demand_lookup():
    profile = _profile()
    assert profile.mean_demand("db") == pytest.approx(0.010)
    assert profile.mean_demand("db", dataset_scale=3.0) == pytest.approx(0.030)
    with pytest.raises(ConfigurationError):
        profile.mean_demand("cache")
