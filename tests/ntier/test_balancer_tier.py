"""Tests for load balancing and tier membership."""

import pytest

from repro.errors import ConfigurationError, ScalingError
from repro.ntier.balancer import LeastConnBalancer, RoundRobinBalancer, make_balancer
from repro.ntier.server import Server, ServerConfig
from repro.ntier.tier import Tier
from repro.sim.engine import Simulator

from tests.conftest import simple_capacity


def make_servers(sim, n, tier="app", threads=10):
    return [
        Server(sim, ServerConfig(f"{tier}-{i + 1}", tier, simple_capacity(), threads))
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# balancers
# ----------------------------------------------------------------------

def test_round_robin_cycles():
    sim = Simulator()
    servers = make_servers(sim, 3)
    rr = RoundRobinBalancer()
    picks = [rr.pick(servers).name for _ in range(6)]
    assert picks == ["app-1", "app-2", "app-3", "app-1", "app-2", "app-3"]


def test_round_robin_empty_raises():
    with pytest.raises(ConfigurationError):
        RoundRobinBalancer().pick([])


def test_leastconn_prefers_least_loaded():
    sim = Simulator()
    servers = make_servers(sim, 2)
    from repro.ntier.request import Request

    req = Request(0, "X", 0.0, {"app": 1.0})
    servers[0].admit(req, lambda r: None)
    lc = LeastConnBalancer()
    assert lc.pick(servers).name == "app-2"


def test_leastconn_counts_queued():
    sim = Simulator()
    servers = make_servers(sim, 2, threads=1)
    from repro.ntier.request import Request

    # two requests to server 0: one admitted, one queued
    for i in range(2):
        servers[0].admit(Request(i, "X", 0.0, {"app": 1.0}), lambda r: None)
    servers[1].admit(Request(2, "X", 0.0, {"app": 1.0}), lambda r: None)
    # server0 load=2, server1 load=1
    assert LeastConnBalancer().pick(servers).name == "app-2"


def test_leastconn_tie_breaks_by_position():
    sim = Simulator()
    servers = make_servers(sim, 3)
    assert LeastConnBalancer().pick(servers).name == "app-1"


def test_make_balancer():
    assert isinstance(make_balancer("roundrobin"), RoundRobinBalancer)
    assert isinstance(make_balancer("leastconn"), LeastConnBalancer)
    with pytest.raises(ConfigurationError):
        make_balancer("random")


# ----------------------------------------------------------------------
# tiers
# ----------------------------------------------------------------------

def test_tier_add_and_route():
    sim = Simulator()
    tier = Tier("app")
    s1, s2 = make_servers(sim, 2)
    tier.add_server(s1)
    tier.add_server(s2)
    assert tier.size == 2
    assert tier.route() in (s1, s2)


def test_tier_rejects_wrong_tier_server():
    sim = Simulator()
    tier = Tier("db")
    (s,) = make_servers(sim, 1, tier="app")
    with pytest.raises(ConfigurationError):
        tier.add_server(s)


def test_tier_rejects_duplicate_name():
    sim = Simulator()
    tier = Tier("app")
    (s,) = make_servers(sim, 1)
    tier.add_server(s)
    dup = Server(sim, ServerConfig("app-1", "app", simple_capacity(), 10))
    with pytest.raises(ScalingError):
        tier.add_server(dup)


def test_drain_defaults_to_newest():
    sim = Simulator()
    tier = Tier("app")
    s1, s2 = make_servers(sim, 2)
    tier.add_server(s1)
    tier.add_server(s2)
    drained = tier.begin_drain()
    assert drained is s2
    assert tier.size == 1
    assert tier.draining == [s2]


def test_cannot_drain_last_server():
    sim = Simulator()
    tier = Tier("app")
    (s1,) = make_servers(sim, 1)
    tier.add_server(s1)
    with pytest.raises(ScalingError):
        tier.begin_drain()


def test_drain_unknown_server_raises():
    sim = Simulator()
    tier = Tier("app")
    s1, s2 = make_servers(sim, 2)
    tier.add_server(s1)
    with pytest.raises(ScalingError):
        tier.begin_drain(s2)


def test_collect_drained_waits_for_idle():
    sim = Simulator()
    tier = Tier("app")
    s1, s2 = make_servers(sim, 2)
    tier.add_server(s1)
    tier.add_server(s2)
    from repro.ntier.request import Request

    req = Request(0, "X", 0.0, {"app": 1.0})
    s2.admit(req, lambda r: None)
    tier.begin_drain(s2)
    assert tier.collect_drained() == []  # still busy
    s2.release(req)
    assert tier.collect_drained() == [s2]
    assert tier.draining == []


def test_change_notifications():
    sim = Simulator()
    tier = Tier("app")
    events = []
    tier.on_change(events.append)
    s1, s2 = make_servers(sim, 2)
    tier.add_server(s1)
    tier.add_server(s2)
    tier.begin_drain(s2)
    tier.collect_drained()
    assert events == ["add", "add", "drain", "retire"]


def test_total_admitted_and_utilization():
    sim = Simulator()
    tier = Tier("db")
    servers = make_servers(sim, 2, tier="db")
    for s in servers:
        tier.add_server(s)
    from repro.ntier.request import Request

    servers[0].admit(Request(0, "X", 0.0, {"db": 1.0}), lambda r: None)
    assert tier.total_admitted() == 1
    assert tier.mean_utilization() == pytest.approx(0.0)  # admitted, not active
