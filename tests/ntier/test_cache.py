"""Tests for the optional Memcached-style cache tier."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ntier.app import CACHE, DB, NTierApplication, SoftResourceAllocation
from repro.ntier.cache import CachePolicy
from repro.ntier.request import Request
from repro.ntier.server import Server, ServerConfig
from repro.sim.engine import Simulator

from tests.conftest import simple_capacity


def make_cached_app(sim, hit_ratio=0.8, seed=0):
    policy = CachePolicy(np.random.default_rng(seed), hit_ratio=hit_ratio)
    app = NTierApplication(sim, SoftResourceAllocation(1000, 100, 50),
                           cache_policy=policy)
    for name, tier, a_sat in [
        ("web-1", "web", 1000), ("app-1", "app", 1000),
        ("db-1", "db", 1000), ("cache-1", CACHE, 1000),
    ]:
        app.attach_server(
            Server(sim, ServerConfig(name, tier, simple_capacity(a_sat), 100_000))
        )
    return app, policy


def read_request(i, db=0.010):
    return Request(i, "ViewStory", 0.0,
                   {"web": 0.0005, "app": 0.002, "db": db})


def write_request(i):
    return Request(i, "StoreStory", 0.0,
                   {"web": 0.0005, "app": 0.002, "db": 0.010})


def test_policy_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ConfigurationError):
        CachePolicy(rng, hit_ratio=1.5)
    with pytest.raises(ConfigurationError):
        CachePolicy(rng, lookup_fraction=0.0)


def test_cache_inactive_without_servers():
    sim = Simulator()
    policy = CachePolicy(np.random.default_rng(0))
    app = NTierApplication(sim, cache_policy=policy)
    assert not app.cache_active


def test_hits_skip_the_db():
    sim = Simulator()
    app, policy = make_cached_app(sim, hit_ratio=1.0)
    db = app.tiers[DB].servers[0]
    cache = app.tiers[CACHE].servers[0]
    for i in range(20):
        sim.schedule(0.0, app.submit, read_request(i))
    sim.run()
    assert app.completed == 20
    assert db.completions == 0
    assert cache.completions == 20


def test_misses_go_to_the_db():
    sim = Simulator()
    app, policy = make_cached_app(sim, hit_ratio=0.0)
    db = app.tiers[DB].servers[0]
    cache = app.tiers[CACHE].servers[0]
    for i in range(20):
        sim.schedule(0.0, app.submit, read_request(i))
    sim.run()
    assert db.completions == 20
    assert cache.completions == 0


def test_writes_always_bypass_cache():
    sim = Simulator()
    app, policy = make_cached_app(sim, hit_ratio=1.0)
    db = app.tiers[DB].servers[0]
    for i in range(10):
        sim.schedule(0.0, app.submit, write_request(i))
    sim.run()
    assert db.completions == 10
    assert policy.write_bypasses == 10


def test_hit_ratio_statistics():
    sim = Simulator()
    app, policy = make_cached_app(sim, hit_ratio=0.7, seed=42)
    for i in range(800):
        sim.schedule(i * 0.001, app.submit, read_request(i))
    sim.run()
    assert policy.observed_hit_ratio == pytest.approx(0.7, abs=0.05)


def test_cache_hits_are_faster():
    sim = Simulator()
    app, policy = make_cached_app(sim, hit_ratio=1.0)
    done = []
    app.on_complete(lambda r: done.append(r.response_time))
    sim.schedule(0.0, app.submit, read_request(0))
    sim.run()
    hit_latency = done[0]

    sim2 = Simulator()
    app2, _ = make_cached_app(sim2, hit_ratio=0.0)
    done2 = []
    app2.on_complete(lambda r: done2.append(r.response_time))
    sim2.schedule(0.0, app2.submit, read_request(0))
    sim2.run()
    miss_latency = done2[0]
    assert hit_latency < miss_latency
    # the 10 ms DB call was replaced by a ~0.8 ms lookup
    assert miss_latency - hit_latency == pytest.approx(0.010 * 0.92, rel=0.05)


def test_cache_reduces_db_pressure_under_load():
    sim = Simulator()
    app, _ = make_cached_app(sim, hit_ratio=0.8, seed=1)
    db = app.tiers[DB].servers[0]
    for i in range(500):
        sim.schedule(i * 0.0005, app.submit, read_request(i))
    sim.run()
    assert app.completed == 500
    assert db.completions == pytest.approx(100, abs=40)
