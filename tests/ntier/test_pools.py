"""Tests for the resizable FIFO admission pools."""

import pytest

from repro.errors import PoolError
from repro.ntier.pools import FifoPool


def make_pool(limit=2):
    granted = []
    pool = FifoPool("p", limit)
    return pool, granted


def test_immediate_grant_when_free():
    pool, granted = make_pool(2)
    pool.acquire("a", granted.append)
    assert granted == ["a"]
    assert pool.in_use == 1
    assert pool.available == 1


def test_queues_when_full():
    pool, granted = make_pool(1)
    pool.acquire("a", granted.append)
    pool.acquire("b", granted.append)
    assert granted == ["a"]
    assert pool.queued == 1


def test_release_wakes_fifo_order():
    pool, granted = make_pool(1)
    for token in ("a", "b", "c"):
        pool.acquire(token, granted.append)
    pool.release()
    assert granted == ["a", "b"]
    pool.release()
    assert granted == ["a", "b", "c"]


def test_release_without_acquire_raises():
    pool, _ = make_pool(1)
    with pytest.raises(PoolError):
        pool.release()


def test_limit_validation():
    with pytest.raises(PoolError):
        FifoPool("p", 0)
    pool, _ = make_pool(1)
    with pytest.raises(PoolError):
        pool.resize(0)


def test_resize_grow_wakes_waiters():
    pool, granted = make_pool(1)
    for token in ("a", "b", "c"):
        pool.acquire(token, granted.append)
    pool.resize(3)
    assert granted == ["a", "b", "c"]
    assert pool.in_use == 3


def test_resize_shrink_is_graceful():
    pool, granted = make_pool(3)
    for token in ("a", "b", "c"):
        pool.acquire(token, granted.append)
    pool.resize(1)
    # nobody evicted; over-subscribed until holders release
    assert pool.in_use == 3
    assert pool.limit == 1
    assert pool.available == 0
    pool.acquire("d", granted.append)
    pool.release()
    pool.release()
    # still 1 in use >= limit 1, d keeps waiting
    assert granted == ["a", "b", "c"]
    pool.release()
    assert granted == ["a", "b", "c", "d"]


def test_cancel_removes_waiter():
    pool, granted = make_pool(1)
    pool.acquire("a", granted.append)
    pool.acquire("b", granted.append)
    pool.acquire("c", granted.append)
    assert pool.cancel("b") is True
    pool.release()
    assert granted == ["a", "c"]


def test_cancel_missing_returns_false():
    pool, _ = make_pool(1)
    assert pool.cancel("ghost") is False


def test_counters():
    pool, granted = make_pool(1)
    pool.acquire("a", granted.append)
    pool.acquire("b", granted.append)
    pool.release()
    assert pool.total_acquired == 2
    assert pool.total_queued == 1


def test_fifo_no_overtake_after_grow():
    """A token arriving after a queue formed must not overtake it."""
    pool, granted = make_pool(1)
    pool.acquire("a", granted.append)
    pool.acquire("b", granted.append)
    pool.acquire("c", granted.append)
    # "d" arrives while queue exists; even though a release happens,
    # "b" then "c" go first.
    pool.acquire("d", granted.append)
    pool.release()
    pool.release()
    pool.release()
    assert granted == ["a", "b", "c", "d"]


def test_reentrant_release_during_grant():
    """A grant callback that immediately releases must not corrupt
    state (happens when a zero-demand phase completes synchronously)."""
    pool = FifoPool("p", 1)
    order = []

    def quick(token):
        order.append(token)
        pool.release()

    pool.acquire("a", quick)
    pool.acquire("b", quick)
    assert order == ["a", "b"]
    assert pool.in_use == 0
