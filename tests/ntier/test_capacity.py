"""Tests for the concurrency-dependent capacity model."""

import pytest

from repro.errors import CapacityModelError
from repro.ntier.capacity import CapacityModel, ContentionModel, Resource


# ----------------------------------------------------------------------
# Resource
# ----------------------------------------------------------------------

def test_resource_saturation_concurrency():
    assert Resource("cpu", 1.0, 0.1).saturation_concurrency == 10.0
    assert Resource("cpu", 2.0, 0.1).saturation_concurrency == 20.0


def test_resource_validation():
    with pytest.raises(CapacityModelError):
        Resource("cpu", 0.0, 0.1)
    with pytest.raises(CapacityModelError):
        Resource("cpu", 1.0, 0.0)
    with pytest.raises(CapacityModelError):
        Resource("cpu", 1.0, 1.5)


# ----------------------------------------------------------------------
# ContentionModel
# ----------------------------------------------------------------------

def test_penalty_is_one_at_or_below_one():
    c = ContentionModel(sigma=0.1, kappa=0.01)
    assert c.penalty(1.0) == 1.0
    assert c.penalty(0.5) == 1.0


def test_penalty_usl_formula():
    c = ContentionModel(sigma=0.01, kappa=0.001)
    m = 11.0
    expected = 1.0 / (1.0 + 0.01 * 10 + 0.001 * 11 * 10)
    assert c.penalty(m) == pytest.approx(expected)


def test_penalty_monotonically_decreasing():
    c = ContentionModel(sigma=0.005, kappa=1e-4)
    values = [c.penalty(m) for m in range(1, 100)]
    assert all(a >= b for a, b in zip(values, values[1:]))


def test_zero_contention_is_free():
    c = ContentionModel()
    assert c.penalty(1000.0) == 1.0


def test_contention_validation():
    with pytest.raises(CapacityModelError):
        ContentionModel(sigma=-0.1)
    with pytest.raises(CapacityModelError):
        ContentionModel(kappa=-1e-4)


# ----------------------------------------------------------------------
# CapacityModel
# ----------------------------------------------------------------------

def _model(a_sat=10.0, sigma=0.0, kappa=0.0, cores=1.0):
    return CapacityModel(
        [Resource("cpu", cores, cores / (a_sat * cores))],
        ContentionModel(sigma, kappa),
    )


def test_needs_at_least_one_resource():
    with pytest.raises(CapacityModelError):
        CapacityModel([])


def test_duplicate_resource_names_rejected():
    with pytest.raises(CapacityModelError):
        CapacityModel([Resource("cpu", 1, 0.1), Resource("cpu", 2, 0.2)])


def test_critical_resource_is_first_to_saturate():
    m = CapacityModel([Resource("cpu", 4, 0.04), Resource("disk", 1, 0.2)])
    assert m.critical_resource.name == "disk"
    assert m.saturation_concurrency == 5.0


def test_work_rate_linear_below_saturation():
    m = _model(a_sat=10)
    assert m.work_rate(1, 1) == pytest.approx(1.0)
    assert m.work_rate(5, 5) == pytest.approx(5.0)


def test_work_rate_caps_at_saturation():
    m = _model(a_sat=10)
    assert m.work_rate(50, 50) == pytest.approx(10.0)


def test_work_rate_zero_when_idle():
    assert _model().work_rate(0, 0) == 0.0


def test_work_rate_penalised_by_admitted():
    m = _model(a_sat=10, sigma=0.01)
    # same active, more admitted -> lower rate
    assert m.work_rate(5, 50) < m.work_rate(5, 5)


def test_throughput_matches_rate_over_demand():
    m = _model(a_sat=10)
    assert m.throughput(5, 0.01) == pytest.approx(500.0)
    assert m.throughput(20, 0.01) == pytest.approx(1000.0)


def test_throughput_validation():
    with pytest.raises(CapacityModelError):
        _model().throughput(5, 0.0)


def test_peak_finds_saturation_knee():
    m = _model(a_sat=10, sigma=0.001, kappa=1e-5)
    q, tp = m.peak(0.01)
    assert 9 <= q <= 12
    assert tp == pytest.approx(m.throughput(q, 0.01))


def test_peak_with_descent_is_unimodal_argmax():
    m = _model(a_sat=10, sigma=0.01, kappa=1e-3)
    q, tp = m.peak(0.01)
    assert q <= 11
    for other in (q + 10, q + 30):
        assert m.throughput(other, 0.01) <= tp


def test_busy_utilization_ignores_penalty():
    m = _model(a_sat=10, sigma=0.05, kappa=0.01)
    # 10 active requests peg the CPU even though contention wastes much
    # of it — the monitoring agent reports a busy CPU.
    assert m.utilization("cpu", 10, 100) == pytest.approx(1.0)
    assert m.utilization("cpu", 5, 5) == pytest.approx(0.5)
    assert m.utilization("cpu", 0, 0) == 0.0


def test_efficiency_reflects_penalty():
    m = _model(a_sat=10, sigma=0.05, kappa=0.01)
    assert m.efficiency("cpu", 10, 100) < 0.5
    lightly = m.efficiency("cpu", 5, 5)
    assert lightly == pytest.approx(m.work_rate(5, 5) * 0.1, rel=1e-9)


def test_unknown_resource_raises():
    with pytest.raises(CapacityModelError):
        _model().utilization("gpu", 1, 1)


def test_scaled_cores_doubles_saturation():
    m = _model(a_sat=10)
    m2 = m.scaled_cores("cpu", 2.0)
    assert m2.saturation_concurrency == pytest.approx(20.0)
    # original untouched
    assert m.saturation_concurrency == pytest.approx(10.0)


def test_scaled_cores_unknown_name_keeps_resources():
    m = CapacityModel([Resource("cpu", 1, 0.1), Resource("disk", 1, 0.5)])
    m2 = m.scaled_cores("disk", 2.0)
    assert m2.critical_resource.name == "disk"
    assert m2.saturation_concurrency == pytest.approx(4.0)
