"""Tests for request objects."""

import pytest

from repro.ntier.request import Request, ServerVisit


def test_response_time_requires_completion():
    req = Request(0, "X", arrival=1.0, demands={})
    with pytest.raises(ValueError):
        _ = req.response_time
    req.completion = 3.5
    assert req.response_time == pytest.approx(2.5)
    assert req.done


def test_demand_lookup_and_error():
    req = Request(0, "X", 0.0, demands={"db": 0.01})
    assert req.demand_at("db") == 0.01
    with pytest.raises(KeyError, match="web"):
        req.demand_at("web")


def test_open_visit_records_arrival():
    req = Request(0, "X", 0.0, demands={})
    visit = req.open_visit("db-1", now=4.0)
    assert visit.server_name == "db-1"
    assert visit.arrival == 4.0
    assert req.visits == [visit]


def test_visit_latency_requires_departure():
    visit = ServerVisit("db-1", arrival=1.0)
    with pytest.raises(ValueError):
        _ = visit.latency
    visit.departure = 1.75
    assert visit.latency == pytest.approx(0.75)
