"""FaultInjector: each fault class against a live mini-stack."""

from repro.cloud.hypervisor import Hypervisor
from repro.control.bus import ControlBus
from repro.control.trace import DecisionTrace
from repro.faults.injector import FaultInjector, apply_slowdown
from repro.faults.plan import (
    ClientTimeoutSpec,
    FaultPlan,
    ProvisioningFaultSpec,
    ServerCrashSpec,
    SlowNodeSpec,
    TelemetryDropoutSpec,
)
from repro.monitoring.warehouse import MetricWarehouse
from repro.ntier.app import APP, DB, WEB, NTierApplication, SoftResourceAllocation
from repro.rng import RngRegistry
from repro.scaling.actuator import Actuator
from repro.scaling.factory import ServerFactory
from repro.scaling.policy import ThresholdPolicy, TierPolicyConfig
from repro.sim.engine import Simulator
from repro.workload.generator import (
    ClosedLoopGenerator,
    OpenLoopGenerator,
    RequestFactory,
)
from repro.workload.trace import Trace

from tests.conftest import simple_capacity, tiny_mix


def build_stack(topology=(1, 2, 2)):
    sim = Simulator()
    soft = SoftResourceAllocation(200, 30, 20)
    app = NTierApplication(sim, soft)
    factory = ServerFactory(sim)
    factory.set_template(WEB, simple_capacity(1000), soft.web_threads)
    factory.set_template(APP, simple_capacity(50), soft.app_threads)
    factory.set_template(DB, simple_capacity(10), 100_000)
    hv = Hypervisor(sim, prep_period=2.0)
    bus = ControlBus()
    wh = MetricWarehouse(sim, fine_interval=0.5, bus=bus)
    trace = DecisionTrace()
    actuator = Actuator(sim, app, hv, factory, wh, trace, bus)
    for tier, n in zip((WEB, APP, DB), topology):
        actuator.bootstrap(tier, n)
    return sim, app, actuator, hv, wh, bus, trace


def make_injector(stack, plan, generator=None):
    sim, app, actuator, hv, wh, bus, trace = stack
    injector = FaultInjector(sim, app, actuator, hv, wh, generator, bus)
    injector.schedule(plan)
    return injector


def closed_loop(sim, app, users=20, seed=7):
    rng = RngRegistry(seed)
    gen = ClosedLoopGenerator(
        sim, app, users,
        RequestFactory(tiny_mix(db=0.01), rng.stream("d")),
        rng.stream("u"), think_time=0.0,
    )
    gen.start()
    return gen


def db_units(app, name="db-1"):
    server = next(
        s for s in app.tiers[DB].all_instances() if s.name == name
    )
    return server.capacity.resource("cpu").units


# ----------------------------------------------------------------------
# slow node
# ----------------------------------------------------------------------

def test_slow_node_degrades_then_restores():
    stack = build_stack()
    sim, app, *_ , trace = stack
    injector = make_injector(
        stack, FaultPlan((SlowNodeSpec(DB, 2.0, duration=3.0, slowdown=4.0),))
    )
    sim.run(until=3.0)
    assert db_units(app) == 0.25
    sim.run(until=6.0)
    assert db_units(app) == 1.0
    kinds = [e.kind for e in trace.faults()]
    assert kinds == ["fault_injected", "fault_recovered"]
    assert len(injector.episodes) == 1
    assert injector.episodes[0].kind == "slow"


def test_overlapping_slow_episodes_compose():
    stack = build_stack()
    sim, app, *_ = stack
    make_injector(
        stack,
        FaultPlan(
            (
                SlowNodeSpec(DB, 1.0, duration=4.0, slowdown=4.0),
                SlowNodeSpec(DB, 2.0, duration=6.0, slowdown=2.0),
            )
        ),
    )
    sim.run(until=3.0)
    assert abs(db_units(app) - 1.0 / 8.0) < 1e-12  # both active
    sim.run(until=6.0)
    assert abs(db_units(app) - 0.5) < 1e-12  # first restored
    sim.run(until=9.0)
    assert abs(db_units(app) - 1.0) < 1e-12  # fully healed


def test_slow_node_composes_with_scale_up():
    stack = build_stack()
    sim, app, actuator, *_ = stack
    make_injector(
        stack, FaultPlan((SlowNodeSpec(DB, 1.0, duration=10.0, slowdown=4.0),))
    )
    sim.schedule(2.0, actuator.scale_up, DB, 2.0, 8.0)
    sim.run(until=20.0)
    # scale_up picked the fewest-vCPU server (both equal -> first);
    # after recovery its units must be exactly original x factor.
    total = sum(
        s.capacity.resource("cpu").units for s in app.tiers[DB].servers
    )
    assert abs(total - 3.0) < 1e-9  # 2.0 (scaled) + 1.0 (untouched)


def test_slow_node_target_gone_before_recovery():
    stack = build_stack()
    sim, app, actuator, *_ , trace = stack
    gen = closed_loop(sim, app)
    make_injector(
        stack, FaultPlan((SlowNodeSpec(DB, 1.0, duration=10.0, slowdown=4.0),))
    )
    sim.schedule(3.0, actuator.crash_server, "db-1")
    sim.run(until=15.0)
    gen.stop()
    sim.run(until=40.0)
    kinds = [e.kind for e in trace.faults()]
    assert "fault_recovered" in kinds  # recovery fired as a no-op
    assert "server_ejected" in kinds
    assert app.completed + app.failed == app.submitted


# ----------------------------------------------------------------------
# server crash
# ----------------------------------------------------------------------

def test_crash_fails_inflight_and_ejects():
    stack = build_stack()
    sim, app, actuator, *_ , trace = stack
    gen = closed_loop(sim, app, users=30)
    injector = make_injector(stack, FaultPlan((ServerCrashSpec(DB, 5.0),)))
    sim.run(until=10.0)
    gen.stop()
    sim.run(until=40.0)
    assert app.tiers[DB].size == 1
    assert app.failed > 0
    assert app.completed + app.failed == app.submitted
    assert app.in_flight == 0
    kinds = [e.kind for e in trace.faults()]
    assert "fault_injected" in kinds and "server_ejected" in kinds
    assert injector.episodes[0].failed == app.failed
    # survivors keep clean accounting
    for server in app.tiers[DB].servers:
        assert server.admitted == server.threads.in_use


# ----------------------------------------------------------------------
# provisioning failure / delay
# ----------------------------------------------------------------------

def test_provisioning_failure_retries_with_backoff():
    stack = build_stack(topology=(1, 1, 1))
    sim, app, actuator, *_ , trace = stack
    make_injector(
        stack,
        FaultPlan((ProvisioningFaultSpec(DB, 1.0, duration=6.0, mode="fail"),)),
    )
    sim.schedule(2.0, actuator.scale_out, DB)
    probe = {}
    sim.schedule(5.0, lambda: probe.update(during=actuator.action_in_flight(DB)))
    sim.run(until=30.0)
    assert probe["during"] is True  # retry pending counts as in flight
    assert app.tiers[DB].size == 2  # the intent survived the fault
    kinds = [e.kind for e in trace.faults()]
    assert "scale_out_failed" in kinds
    assert "scale_out_retry" in kinds
    assert not actuator.action_in_flight(DB)


def test_provisioning_delay_stretches_prep():
    stack = build_stack(topology=(1, 1, 1))
    sim, app, actuator, *_ , trace = stack
    make_injector(
        stack,
        FaultPlan(
            (ProvisioningFaultSpec("*", 1.0, 10.0, mode="delay", delay_factor=4.0),)
        ),
    )
    sim.schedule(2.0, actuator.scale_out, DB)
    sim.run(until=30.0)
    ready = [e for e in trace.all() if e.kind == "scale_out_ready"]
    assert len(ready) == 1
    # prep 2s x factor 4 = 8s after the launch at t=2.
    assert abs(ready[0].time - 10.0) < 1e-9


# ----------------------------------------------------------------------
# telemetry dropout
# ----------------------------------------------------------------------

def test_dropout_makes_telemetry_stale_then_recovers():
    stack = build_stack()
    sim, app, actuator, hv, wh, bus, trace = stack
    gen = closed_loop(sim, app)
    make_injector(stack, FaultPlan((TelemetryDropoutSpec(3.0, 8.0, tier="*"),)))
    policy = ThresholdPolicy(
        sim, wh, actuator, {DB: TierPolicyConfig()}
    )
    probes = {}
    sim.schedule(2.5, lambda: probes.update(before=wh.telemetry_age(DB)))
    sim.schedule(10.0, lambda: probes.update(
        during=wh.telemetry_age(DB), decision=policy.evaluate(DB)
    ))
    sim.schedule(14.5, lambda: probes.update(after=wh.telemetry_age(DB)))
    sim.run(until=15.0)
    gen.stop()
    sim.run(until=40.0)
    assert probes["before"] <= 1.0
    assert probes["during"] > 5.0
    assert probes["decision"].action is None
    assert "telemetry stale" in probes["decision"].reason
    assert probes["after"] <= 1.0  # feed restored after the window


# ----------------------------------------------------------------------
# client timeout + retry
# ----------------------------------------------------------------------

def test_client_timeout_retries_and_clears():
    stack = build_stack()
    sim, app, *_ = stack
    rng = RngRegistry(11)
    trace_obj = Trace("flat", [0.0, 20.0], [30.0, 30.0])
    gen = OpenLoopGenerator(
        sim, app, trace_obj,
        RequestFactory(tiny_mix(db=0.01), rng.stream("d")),
        rng.stream("a"), think_time=0.5,
    )
    make_injector(
        stack,
        FaultPlan(
            (ClientTimeoutSpec(2.0, 8.0, deadline=0.001, max_retries=1),)
        ),
        generator=gen,
    )
    gen.start()
    sim.run(until=20.0)
    gen.stop()
    sim.run(until=60.0)
    assert gen.timeouts > 0
    assert gen.retried > 0
    assert gen.abandoned > 0  # max_retries=1 with an impossible deadline
    assert gen._deadline is None  # window closed
    # Physical requests all complete even when clients gave up on them.
    assert app.completed == app.submitted
    assert app.in_flight == 0
