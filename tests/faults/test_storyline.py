"""Storyline templates: registry, lowering, digests, and DSL errors."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ExperimentError
from repro.faults.plan import (
    FaultPlan,
    ProvisioningFaultSpec,
    ServerCrashSpec,
    SlowNodeSpec,
    TelemetryDropoutSpec,
)
from repro.faults.storyline import (
    StoryAtom,
    Storyline,
    get_storyline,
    parse_storyline,
    storyline_names,
)
from repro.rng import RngRegistry

BUILTINS = ("az-outage", "brownout", "cascading-retry-storm", "flapping-node")


def test_builtin_registry_has_at_least_four_storylines():
    names = storyline_names()
    assert len(names) >= 4
    assert names == tuple(sorted(names))
    for name in BUILTINS:
        assert name in names


def test_az_outage_instantiation_scales_and_correlates():
    plan = get_storyline("az-outage").instantiate(
        tier="db", t0=100.0, duration=60.0
    )
    assert isinstance(plan, FaultPlan)
    assert plan.storyline == "az-outage"
    by_type = {type(s): s for s in plan.specs}
    crash = by_type[ServerCrashSpec]
    prov = by_type[ProvisioningFaultSpec]
    dropout = by_type[TelemetryDropoutSpec]
    # The epicenter binds the crash; the wildcard atoms stay wildcard.
    assert crash.tier == "db"
    assert prov.tier == "*"
    assert dropout.tier == "*"
    # Fractional offsets/lengths scale with the incident window.
    assert crash.at == pytest.approx(103.0)  # offset_frac 0.05 of 60 s
    assert prov.window == (100.0, 130.0)  # length_frac 0.5
    assert dropout.window == (100.0, 148.0)  # length_frac 0.8
    # Specs come out sorted by activation time.
    starts = [s.window[0] for s in plan.specs]
    assert starts == sorted(starts)


def test_epicenter_moves_with_the_tier_argument():
    plan = get_storyline("brownout").instantiate(
        tier="app", t0=50.0, duration=40.0
    )
    slows = [s for s in plan.specs if isinstance(s, SlowNodeSpec)]
    # One atom is pinned to app explicitly, the epicenter one follows
    # the argument - both land on app here.
    assert {s.tier for s in slows} == {"app"}


def test_storyline_digest_is_stable_and_content_sensitive():
    story = get_storyline("az-outage")
    assert story.content_digest == story.content_digest
    other = Storyline(
        name="az-outage-variant",
        summary=story.summary,
        atoms=story.atoms + (StoryAtom(kind="slow"),),
    )
    assert other.content_digest != story.content_digest


def test_repeat_expands_atoms_periodically():
    story = get_storyline("flapping-node")
    assert story.repeat == 3
    plan = story.instantiate(tier="db", t0=10.0, duration=20.0, rng=None)
    slows = [s for s in plan.specs if isinstance(s, SlowNodeSpec)]
    assert len(slows) == 3
    # Without an rng the repetitions are perfectly periodic.
    assert [s.at for s in slows] == [10.0, 17.0, 24.0]


def test_jitter_is_deterministic_per_seed():
    a = parse_storyline("flapping-node", run_duration=300.0, seed=7)
    b = parse_storyline("flapping-node", run_duration=300.0, seed=7)
    c = parse_storyline("flapping-node", run_duration=300.0, seed=8)
    assert a == b
    assert a != c  # a different seed moves the jittered repetitions


def test_jitter_moves_repetitions_as_a_unit():
    story = get_storyline("flapping-node")
    rng = RngRegistry(3).stream("storyline:flapping-node")
    plan = story.instantiate(tier="db", t0=100.0, duration=50.0, rng=rng)
    starts = [s.at for s in plan.specs]
    # First repetition is pinned at t0, later ones jittered off-period.
    assert starts[0] == 100.0
    assert starts == sorted(starts)
    unjittered = story.instantiate(tier="db", t0=100.0, duration=50.0)
    assert starts != [s.at for s in unjittered.specs]


def test_parse_storyline_defaults_match_the_suite_window():
    plan = parse_storyline("az-outage", run_duration=300.0, seed=3)
    crash = next(s for s in plan.specs if isinstance(s, ServerCrashSpec))
    # t0 = 0.4 * 300 = 120, window = min(60, 0.2 * 300) = 60.
    assert crash.at == pytest.approx(123.0)
    assert crash.tier == "db"


def test_parse_storyline_full_form():
    plan = parse_storyline("az-outage:app:40:20", run_duration=700.0, seed=3)
    crash = next(s for s in plan.specs if isinstance(s, ServerCrashSpec))
    assert crash.tier == "app"
    assert crash.at == pytest.approx(41.0)
    prov = next(s for s in plan.specs if isinstance(s, ProvisioningFaultSpec))
    assert prov.window == (40.0, 50.0)


def test_unknown_storyline_lists_known_names():
    with pytest.raises(ConfigurationError, match="az-outage"):
        parse_storyline("no-such-incident", run_duration=300.0)


def test_malformed_storyline_specs():
    with pytest.raises(ConfigurationError, match="empty"):
        parse_storyline("", run_duration=300.0)
    with pytest.raises(ConfigurationError, match=r"NAME\[:TIER"):
        parse_storyline("az-outage:db:120:60:extra", run_duration=300.0)
    with pytest.raises(ConfigurationError, match="bad number"):
        parse_storyline("az-outage:db:soon", run_duration=300.0)
    with pytest.raises(ConfigurationError, match="epicenter tier"):
        parse_storyline("az-outage:rack7", run_duration=300.0)


def test_malformed_atoms_rejected():
    with pytest.raises(ConfigurationError, match="kind"):
        StoryAtom(kind="meteor")
    with pytest.raises(ConfigurationError, match="offset_frac"):
        StoryAtom(kind="slow", offset_frac=-0.1)
    with pytest.raises(ConfigurationError, match="length_frac"):
        StoryAtom(kind="slow", length_frac=0.0)
    with pytest.raises(ConfigurationError, match="tier"):
        StoryAtom(kind="slow", tier="rack7")
    with pytest.raises(ConfigurationError, match="no atoms"):
        Storyline(name="hollow", summary="", atoms=())
    with pytest.raises(ConfigurationError, match="repeat"):
        Storyline(
            name="x", summary="", atoms=(StoryAtom(kind="slow"),), repeat=0
        )


def test_overlapping_same_tier_crashes_rejected():
    story = Storyline(
        name="double-tap",
        summary="two crashes on the same server slot",
        atoms=(
            StoryAtom(kind="crash", server_index=0),
            StoryAtom(kind="crash", server_index=0),
        ),
    )
    with pytest.raises(ExperimentError, match="overlapping same-tier crash"):
        story.instantiate(tier="db", t0=100.0, duration=60.0)
    # Distinct server slots are fine.
    ok = Storyline(
        name="spread-tap",
        summary="two crashes on different slots",
        atoms=(
            StoryAtom(kind="crash", server_index=0),
            StoryAtom(kind="crash", server_index=1, offset_frac=0.2),
        ),
    )
    plan = ok.instantiate(tier="db", t0=100.0, duration=60.0)
    assert len(plan.specs) == 2


def test_lowered_plans_ride_content_digests():
    a = parse_storyline("az-outage", run_duration=300.0, seed=3)
    b = parse_storyline("az-outage", run_duration=300.0, seed=3)
    assert a == b
    assert a.title == "az-outage"
    assert "crash:db[0]" in a.describe()
    moved = parse_storyline("az-outage:db:150", run_duration=300.0, seed=3)
    assert moved != a
