"""FaultPlan: DSL parsing, validation, and content digests."""

import pytest

from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.artifact import content_digest
from repro.faults.plan import (
    ClientTimeoutSpec,
    FaultPlan,
    ProvisioningFaultSpec,
    ServerCrashSpec,
    SlowNodeSpec,
    TelemetryDropoutSpec,
    parse_fault,
    parse_faults,
)


def test_parse_each_kind_with_defaults():
    assert parse_fault("crash:db:120") == ServerCrashSpec("db", 120.0)
    assert parse_fault("slow:app:60") == SlowNodeSpec("app", 60.0)
    assert parse_fault("slow:app:60:30:8:1") == SlowNodeSpec(
        "app", 60.0, duration=30.0, slowdown=8.0, server_index=1
    )
    assert parse_fault("prov:db:100:40") == ProvisioningFaultSpec(
        "db", 100.0, 40.0
    )
    assert parse_fault("prov:all:100:40:delay:3") == ProvisioningFaultSpec(
        "*", 100.0, 40.0, mode="delay", delay_factor=3.0
    )
    assert parse_fault("dropout:all:80:25") == TelemetryDropoutSpec(
        80.0, 25.0, tier="*"
    )
    assert parse_fault("dropout:db:80:25") == TelemetryDropoutSpec(
        80.0, 25.0, tier="db"
    )
    assert parse_fault("timeout:50:60:2.5:3") == ClientTimeoutSpec(
        50.0, 60.0, deadline=2.5, max_retries=3
    )


def test_parse_plan_and_describe():
    plan = FaultPlan.parse("crash:db:120, slow:app:60:30")
    assert len(plan) == 2
    assert plan.describe() == "crash:db[0]@120,slow:app[0]x4@60+30"
    assert parse_faults(None) is None
    assert parse_faults("  ") is None
    assert parse_faults("crash:db:120") == FaultPlan(
        (ServerCrashSpec("db", 120.0),)
    )


@pytest.mark.parametrize(
    "atom",
    [
        "explode:db:10",          # unknown kind
        "crash:db",               # missing time
        "crash:mainframe:10",     # unknown tier
        "slow:db:ten",            # non-numeric
        "slow:db:-1",             # negative time
        "slow:db:10:0",           # non-positive duration
        "prov:db:10:20:maybe",    # bad mode
        "timeout:10:20:0",        # non-positive deadline
        "dropout:db:10",          # missing duration
    ],
)
def test_parse_rejects_bad_atoms(atom):
    with pytest.raises(ConfigurationError):
        parse_fault(atom)


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        SlowNodeSpec("db", 10.0, slowdown=1.0)
    with pytest.raises(ConfigurationError):
        SlowNodeSpec("db", 10.0, server_index=-1)
    with pytest.raises(ConfigurationError):
        ProvisioningFaultSpec("db", 10.0, 5.0, delay_factor=1.0)
    with pytest.raises(ConfigurationError):
        ClientTimeoutSpec(10.0, 5.0, max_retries=-1)
    with pytest.raises(ConfigurationError):
        TelemetryDropoutSpec(10.0, 5.0, tier="nope")
    with pytest.raises(ConfigurationError):
        FaultPlan(("not a spec",))


def test_overlapping_dropouts_rejected():
    with pytest.raises(ExperimentError):
        FaultPlan(
            (
                TelemetryDropoutSpec(10.0, 20.0, tier="db"),
                TelemetryDropoutSpec(25.0, 20.0, tier="*"),
            )
        )
    # Disjoint windows on the same tier are fine.
    FaultPlan(
        (
            TelemetryDropoutSpec(10.0, 20.0, tier="db"),
            TelemetryDropoutSpec(40.0, 20.0, tier="db"),
        )
    )
    # Overlap on different concrete tiers is fine too.
    FaultPlan(
        (
            TelemetryDropoutSpec(10.0, 20.0, tier="db"),
            TelemetryDropoutSpec(15.0, 20.0, tier="app"),
        )
    )


def test_overlapping_timeouts_rejected():
    with pytest.raises(ExperimentError):
        FaultPlan(
            (
                ClientTimeoutSpec(10.0, 30.0),
                ClientTimeoutSpec(30.0, 30.0),
            )
        )


def test_overlapping_slow_nodes_allowed():
    plan = FaultPlan(
        (
            SlowNodeSpec("db", 10.0, duration=30.0),
            SlowNodeSpec("db", 20.0, duration=30.0),
        )
    )
    assert len(plan) == 2


def test_digests_distinguish_spec_types_and_fields():
    crash = FaultPlan((ServerCrashSpec("db", 10.0),))
    crash_app = FaultPlan((ServerCrashSpec("app", 10.0),))
    slow = FaultPlan((SlowNodeSpec("db", 10.0),))
    digests = {content_digest(p) for p in (crash, crash_app, slow)}
    assert len(digests) == 3
    assert content_digest(crash) == content_digest(
        FaultPlan((ServerCrashSpec("db", 10.0),))
    )
