"""Tests for deterministic random-stream management."""

from repro.rng import RngRegistry


def test_same_seed_same_streams():
    a = RngRegistry(42).stream("arrivals")
    b = RngRegistry(42).stream("arrivals")
    assert list(a.random(5)) == list(b.random(5))


def test_different_names_are_independent():
    reg = RngRegistry(42)
    a = reg.stream("arrivals").random(5)
    b = reg.stream("demand").random(5)
    assert list(a) != list(b)


def test_request_order_does_not_matter():
    r1 = RngRegistry(7)
    r1.stream("x")
    y1 = r1.stream("y").random(3)
    r2 = RngRegistry(7)
    y2 = r2.stream("y").random(3)
    assert list(y1) == list(y2)


def test_same_name_returns_same_object():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_different_seeds_differ():
    a = RngRegistry(1).stream("s").random(5)
    b = RngRegistry(2).stream("s").random(5)
    assert list(a) != list(b)


def test_fork_is_deterministic():
    a = RngRegistry(9).fork("sub").stream("s").random(4)
    b = RngRegistry(9).fork("sub").stream("s").random(4)
    assert list(a) == list(b)


def test_fork_differs_from_parent():
    reg = RngRegistry(9)
    a = reg.stream("s").random(4)
    b = reg.fork("sub").stream("s").random(4)
    assert list(a) != list(b)


def test_seed_property():
    assert RngRegistry(123).seed == 123
