"""Validation against closed-form queueing theory.

These tests anchor the simulator to exact results:

* **M/G/1-PS**: with Poisson arrivals (rate lambda) at a processor-
  sharing server of capacity 1 and mean demand d (utilisation
  rho = lambda*d < 1), the mean response time is E[T] = d / (1 - rho) —
  famously *insensitive* to the demand distribution beyond its mean.
* **Closed-loop asymptotes**: with N customers and zero think time,
  throughput approaches min(N/d_total, 1/d_bottleneck) (balanced-job
  bounds), and response time approaches N * d_bottleneck at high N.
* **Little's law** holds on every run.
"""

import numpy as np
import pytest

from repro.ntier.capacity import CapacityModel, ContentionModel, Resource
from repro.ntier.request import Request
from repro.ntier.server import Server, ServerConfig
from repro.rng import RngRegistry
from repro.sim.engine import Simulator


def run_mg1_ps(lam: float, mean_demand: float, cv: float, duration: float,
               seed: int = 0):
    """Poisson arrivals into a capacity-1 PS server; returns latencies."""
    sim = Simulator()
    capacity = CapacityModel([Resource("cpu", 1.0, 1.0)], ContentionModel())
    server = Server(sim, ServerConfig("s", "db", capacity, 10_000_000))
    rng = RngRegistry(seed)
    arrivals = rng.stream("arrivals")
    demands = rng.stream("demands")
    latencies: list[float] = []
    counter = {"n": 0}

    def draw_demand() -> float:
        if cv == 0.0:
            return mean_demand
        shape = 1.0 / (cv * cv)
        return float(demands.gamma(shape, mean_demand / shape))

    def arrive() -> None:
        start = sim.now
        req = Request(counter["n"], "X", start, {"db": 1.0})
        counter["n"] += 1

        def done(r):
            server.release(r)
            latencies.append(sim.now - start)

        server.admit(req, lambda r: server.work(r, draw_demand(), done))
        if sim.now < duration:
            sim.schedule_after(float(arrivals.exponential(1.0 / lam)), arrive)

    sim.schedule(float(arrivals.exponential(1.0 / lam)), arrive)
    sim.run(until=duration * 1.5)
    return np.asarray(latencies)


@pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
def test_mg1_ps_mean_response_time_exponential(rho):
    d = 0.01
    lat = run_mg1_ps(lam=rho / d, mean_demand=d, cv=1.0, duration=400.0)
    expected = d / (1.0 - rho)
    measured = lat[len(lat) // 5 :].mean()  # skip warm-up
    assert measured == pytest.approx(expected, rel=0.08), (
        f"rho={rho}: E[T] measured {measured * 1000:.2f} ms vs "
        f"theory {expected * 1000:.2f} ms"
    )


def test_mg1_ps_insensitivity_to_demand_distribution():
    """PS mean RT depends only on the mean demand, not its CV."""
    d, rho = 0.01, 0.7
    results = {}
    for cv in (0.0, 0.5, 1.0, 2.0):
        lat = run_mg1_ps(lam=rho / d, mean_demand=d, cv=cv, duration=300.0,
                         seed=int(cv * 10))
        results[cv] = lat[len(lat) // 5 :].mean()
    expected = d / (1.0 - rho)
    for cv, measured in results.items():
        assert measured == pytest.approx(expected, rel=0.12), (
            f"cv={cv}: {measured * 1000:.2f} ms vs {expected * 1000:.2f} ms"
        )


def test_littles_law_on_open_run():
    d, rho = 0.01, 0.6
    sim = Simulator()
    capacity = CapacityModel([Resource("cpu", 1.0, 1.0)], ContentionModel())
    server = Server(sim, ServerConfig("s", "db", capacity, 10_000_000))
    rng = RngRegistry(1)
    arrivals = rng.stream("a")
    latencies = []
    counter = {"n": 0}

    def arrive():
        req = Request(counter["n"], "X", sim.now, {"db": 1.0})
        counter["n"] += 1
        start = sim.now

        def done(r):
            server.release(r)
            latencies.append(sim.now - start)

        server.admit(req, lambda r: server.work(r, d, done))
        if sim.now < 200.0:
            sim.schedule_after(float(arrivals.exponential(d / rho)), arrive)

    sim.schedule(0.0, arrive)
    sim.run(until=300.0)
    server.sync_monitors()
    # L = lambda * W  (time-weighted mean concurrency vs. rate * mean RT)
    mean_l = server.concurrency_integral / sim.now
    lam_measured = server.completions / sim.now
    mean_w = float(np.mean(latencies))
    assert mean_l == pytest.approx(lam_measured * mean_w, rel=0.02)


def test_closed_loop_throughput_bounds():
    """Balanced-job bounds: X(N) <= min(N/d_total, capacity)."""
    from repro.workload.generator import ClosedLoopGenerator, RequestFactory
    from tests.conftest import build_app, tiny_mix

    d_total = 0.0075  # tiny_mix demands sum
    d_db = 0.005
    for n in (1, 2, 5, 20, 60):
        sim = Simulator()
        app = build_app(sim, db_a_sat=1.0)  # db capacity = 1/d_db = 200/s
        rng = RngRegistry(n)
        gen = ClosedLoopGenerator(
            sim, app,
            n,
            RequestFactory(tiny_mix(cv=0.0), rng.stream("d")),
            rng.stream("u"),
            think_time=0.0,
        )
        gen.start()
        sim.run(until=20.0)
        x = app.completed / 20.0
        bound = min(n / d_total, 1.0 / d_db)
        assert x <= bound * 1.02
        # and the bound is approached: within 25% for the extremes
        if n == 1 or n >= 20:
            assert x >= 0.75 * bound


def test_closed_loop_high_n_response_time_asymptote():
    """At high N, RT ~ N * d_bottleneck (all time spent queueing)."""
    from repro.workload.generator import ClosedLoopGenerator, RequestFactory
    from tests.conftest import build_app, tiny_mix

    n, d_db = 80, 0.005
    sim = Simulator()
    app = build_app(sim, db_a_sat=1.0)
    rng = RngRegistry(7)
    latencies = []
    app.on_complete(lambda r: latencies.append(r.response_time))
    ClosedLoopGenerator(
        sim, app, n, RequestFactory(tiny_mix(cv=0.0), rng.stream("d")),
        rng.stream("u"), think_time=0.0,
    ).start()
    sim.run(until=30.0)
    steady = np.mean(latencies[len(latencies) // 2 :])
    assert steady == pytest.approx(n * d_db, rel=0.10)
