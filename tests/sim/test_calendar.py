"""Tests for the pluggable event calendars (heap and two-level wheel)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.calendar import (
    CALENDARS,
    SLOT_ACTIVE,
    SLOT_OVERFLOW,
    HeapCalendar,
    WheelCalendar,
    make_calendar,
)
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------

def test_make_calendar_kinds():
    assert isinstance(make_calendar("wheel"), WheelCalendar)
    assert isinstance(make_calendar("heap"), HeapCalendar)
    assert CALENDARS[0] == "wheel"  # documented default


def test_make_calendar_unknown_kind_raises():
    with pytest.raises(ValueError, match="unknown calendar kind"):
        make_calendar("btree")


@pytest.mark.parametrize("bad", [0.0, -1.0])
def test_wheel_invalid_slot_width_raises(bad):
    with pytest.raises(ValueError, match="slot_width"):
        WheelCalendar(slot_width=bad)


def test_wheel_invalid_nslots_raises():
    with pytest.raises(ValueError, match="nslots"):
        WheelCalendar(nslots=1)


# ----------------------------------------------------------------------
# wheel tier routing (exercised through the owning simulator)
# ----------------------------------------------------------------------

def _wheel_sim(slot=0.5, nslots=8):
    return Simulator(calendar="wheel", wheel_slot=slot, wheel_slots=nslots)


def _noop():
    return None


def test_push_routes_by_slot_distance():
    sim = _wheel_sim()  # horizon = 8 * 0.5 s = 4 s
    cal = sim._cal
    near = sim.schedule(1.2, _noop)     # slot 2: in the wheel
    far = sim.schedule(100.0, _noop)    # slot 200: beyond the horizon
    now = sim.schedule(0.0, _noop)      # slot 0 = cursor: active heap
    assert near.slot == 2
    assert far.slot == SLOT_OVERFLOW
    assert now.slot == SLOT_ACTIVE
    assert cal.wheel_count == 1
    assert len(cal.overflow) == 1
    assert len(cal) == 3


def test_bucket_position_tracks_swap_remove():
    sim = _wheel_sim()
    a = sim.schedule(1.2, _noop)
    b = sim.schedule(1.3, _noop)
    c = sim.schedule(1.4, _noop)
    assert [a.pos, b.pos, c.pos] == [0, 1, 2]
    # Moving `a` out swap-removes it: `c` takes its position.
    moved = sim.reschedule(a, 2.2)
    assert moved is a  # in-place move, same handle object
    assert a.slot == 4
    assert c.pos == 0 and b.pos == 1


def test_move_declined_for_active_and_overflow_entries():
    sim = _wheel_sim()
    cal = sim._cal
    active = sim.schedule(0.1, _noop)   # cursor slot -> active heap
    far = sim.schedule(100.0, _noop)    # overflow
    assert cal.move(active, 0.2, 999) is False
    assert cal.move(far, 101.0, 999) is False


def test_reschedule_tombstones_heap_entries():
    sim = _wheel_sim()
    far = sim.schedule(100.0, _noop)
    fresh = sim.reschedule(far, 101.0)
    assert fresh is not far       # tombstone path: new handle
    assert far.cancelled
    assert not fresh.cancelled
    seen = []
    sim.schedule(0.5, seen.append, "early")
    sim.run(until=200.0)
    assert seen == ["early"]
    assert fresh.done


def test_wheel_horizon_rollover_reuses_ring_slots():
    """Events more than one revolution apart share ``index % nslots``
    but must never fire out of order: the far one waits in overflow
    until the cursor reaches its revolution."""
    sim = _wheel_sim(slot=0.5, nslots=8)  # horizon 4 s
    seen = []
    # Slot 2 and slot 10 map to the same ring position (2 % 8 == 10 % 8).
    sim.schedule(5.2, seen.append, "second-rev")
    sim.schedule(1.2, seen.append, "first-rev")
    sim.run()
    assert seen == ["first-rev", "second-rev"]


def test_overflow_migrates_into_wheel_as_cursor_advances():
    sim = _wheel_sim(slot=0.5, nslots=8)
    cal = sim._cal
    order = []
    for t in (3.9, 4.1, 7.9, 12.3, 0.2):
        sim.schedule(t, order.append, t)
    assert len(cal.overflow) == 3  # 4.1, 7.9, 12.3 are beyond the horizon
    sim.run()
    assert order == [0.2, 3.9, 4.1, 7.9, 12.3]
    assert len(cal) == 0


def test_until_parks_cursor_without_skipping_events():
    """A time-limited run must not drag the cursor past events that
    were cut off by ``until``; they fire on the next run()."""
    sim = _wheel_sim(slot=0.5, nslots=8)
    seen = []
    sim.schedule(6.0, seen.append, "late")
    sim.run(until=2.0)
    assert seen == [] and sim.now == 2.0
    sim.schedule(2.5, seen.append, "mid")  # scheduled after the pause
    sim.run()
    assert seen == ["mid", "late"]


def test_cancelled_overflow_heads_are_discarded_on_advance():
    sim = _wheel_sim(slot=0.5, nslots=8)
    cal = sim._cal
    doomed = sim.schedule(50.0, _noop)
    sim.schedule(60.0, _noop)
    doomed.cancel()
    assert cal.dead == 1
    sim.run()
    assert cal.dead == 0
    assert doomed.done


# ----------------------------------------------------------------------
# compaction
# ----------------------------------------------------------------------

@pytest.mark.parametrize("calendar", CALENDARS)
def test_compaction_triggers_when_dead_exceed_live(calendar):
    sim = Simulator(calendar=calendar)
    handles = [sim.schedule(10.0 + i * 0.001, _noop) for i in range(200)]
    survivors = handles[:10]
    for h in handles[10:]:
        h.cancel()
    stats = sim.calendar_stats()
    assert stats["compactions"] >= 1
    assert stats["dead"] < 190  # the debt was actually dropped
    sim.run()
    assert all(h.done for h in survivors)
    assert sim.events_executed == 10


def test_wheel_compaction_rebuilds_bucket_positions():
    sim = _wheel_sim(slot=0.5, nslots=8)
    cal = sim._cal
    keep = [sim.schedule(1.2, _noop) for _ in range(3)]
    doomed = [sim.schedule(1.3, _noop) for _ in range(6)]
    for h in doomed:
        h.cancel()
    cal.compact()
    assert cal.dead == 0 and cal.wheel_count == 3
    bucket = cal.buckets[2 % cal.nslots]
    assert [h.pos for h in bucket] == list(range(len(bucket)))
    # Positions must still support the O(1) move after the rebuild.
    fresh = sim.reschedule(keep[0], 2.2)
    assert fresh is keep[0]


def test_compaction_during_run_keeps_loop_alive():
    """A compaction triggered by a callback's cancels must not strand
    the run loop: the active heap is rebuilt in place."""
    sim = Simulator(calendar="wheel")
    seen = []
    victims = [sim.schedule(5.0 + i * 1e-4, _noop) for i in range(300)]

    def massacre():
        for v in victims:
            v.cancel()
        seen.append("massacre")

    sim.schedule(1.0, massacre)
    sim.schedule(6.0, seen.append, "after")
    sim.run()
    assert seen == ["massacre", "after"]
    assert sim.calendar_stats()["compactions"] >= 1
    assert sim.pending_events == 0


# ----------------------------------------------------------------------
# heap calendar specifics
# ----------------------------------------------------------------------

def test_heap_calendar_peek_discards_cancelled_heads():
    sim = Simulator(calendar="heap")
    doomed = sim.schedule(1.0, _noop)
    live = sim.schedule(2.0, _noop)
    doomed.cancel()
    entry = sim._cal.peek(0)
    assert entry is not None and entry[3] is live
    assert doomed.done  # discarded on the way


def test_heap_calendar_stats_shape():
    sim = Simulator(calendar="heap")
    sim.schedule(1.0, _noop)
    assert sim.calendar_stats() == {"stored": 1, "dead": 0, "compactions": 0}


# ----------------------------------------------------------------------
# property: the two calendars execute identical sequences
# ----------------------------------------------------------------------

_ops = st.lists(
    st.tuples(
        st.sampled_from(["schedule", "cancel", "reschedule"]),
        st.integers(min_value=0, max_value=5000),  # time in ms
        st.integers(min_value=0, max_value=30),    # target handle index
    ),
    min_size=1,
    max_size=60,
)


def _execute_program(calendar, program):
    """Run a schedule/cancel/reschedule program; return the event trace."""
    sim = Simulator(
        calendar=calendar, wheel_slot=0.016, wheel_slots=64
    )  # ~1 s horizon, so the program crosses it constantly
    trace = []
    handles = []

    def fire(tag):
        trace.append((round(sim.now, 6), tag))

    for step, (op, ms, target) in enumerate(program):
        time = ms / 1000.0
        if op == "schedule" or not handles:
            handles.append(sim.schedule(time + 5.0, fire, step))
        elif op == "cancel":
            handles[target % len(handles)].cancel()
        else:
            h = handles[target % len(handles)]
            if not (h.done or h.cancelled):
                handles[target % len(handles)] = sim.reschedule(h, time + 5.0)
    sim.run()
    trace.append(("executed", sim.events_executed))
    return trace


@settings(max_examples=120, deadline=None)
@given(program=_ops)
def test_heap_and_wheel_execute_identically(program):
    assert _execute_program("heap", program) == _execute_program("wheel", program)
