"""Tests for periodic processes."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess


def test_ticks_at_fixed_interval():
    sim = Simulator()
    ticks = []
    PeriodicProcess(sim, 1.0, ticks.append)
    sim.run(until=5.5)
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_custom_start_time():
    sim = Simulator()
    ticks = []
    PeriodicProcess(sim, 2.0, ticks.append, start_at=0.5)
    sim.run(until=5.0)
    assert ticks == [0.5, 2.5, 4.5]


def test_stop_cancels_future_ticks():
    sim = Simulator()
    ticks = []
    proc = PeriodicProcess(sim, 1.0, ticks.append)
    sim.schedule(2.5, proc.stop)
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0]
    assert proc.stopped


def test_stop_from_inside_callback():
    sim = Simulator()
    ticks = []
    proc = PeriodicProcess(sim, 1.0, lambda t: (ticks.append(t), proc.stop()))
    sim.run(until=10.0)
    assert ticks == [1.0]


def test_invalid_interval_raises():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        PeriodicProcess(sim, 0.0, lambda t: None)
    with pytest.raises(ConfigurationError):
        PeriodicProcess(sim, -1.0, lambda t: None)


def test_interval_property():
    sim = Simulator()
    proc = PeriodicProcess(sim, 0.25, lambda t: None)
    assert proc.interval == 0.25


def test_stop_is_idempotent():
    sim = Simulator()
    proc = PeriodicProcess(sim, 1.0, lambda t: None)
    proc.stop()
    proc.stop()
    sim.run(until=3.0)


def test_ticks_reuse_one_event_handle():
    """The periodic chain re-arms the fired handle instead of allocating
    a fresh event per tick."""
    sim = Simulator()
    handles = []
    proc = PeriodicProcess(sim, 1.0, lambda t: handles.append(proc._handle))
    sim.run(until=4.5)
    assert len(handles) == 4
    assert len({id(h) for h in handles}) == 1
    assert handles[0] is proc._handle


def test_periodic_ticks_identical_across_calendars():
    traces = {}
    for calendar in ("wheel", "heap"):
        sim = Simulator(calendar=calendar)
        ticks = []
        PeriodicProcess(sim, 0.05, ticks.append)
        sim.run(until=1.0)
        traces[calendar] = (ticks, sim.events_executed)
    assert traces["wheel"] == traces["heap"]
