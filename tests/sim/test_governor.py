"""Tests for the hybrid-mode governor (repro.sim.governor)."""

import pytest

from repro.control.bus import ControlBus
from repro.control.events import (
    MODE_KINDS,
    NOOP,
    THRESHOLD_TRIP,
    DecisionEvent,
)
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, ServerCrashSpec
from repro.sim.fluid import FluidStepper
from repro.sim.governor import (
    MODE_DISCRETE,
    MODE_FLUID,
    GovernorConfig,
    ModeGovernor,
)
from repro.workload.generator import OpenLoopGenerator, RequestFactory
from repro.workload.trace import Trace

from tests.conftest import build_app, tiny_mix


def make_rig(sim, rng, trace, *, faults=None, config=None, bus=None):
    """A full hybrid wiring: app, open-loop generator, stepper, governor."""
    app = build_app(sim, db_a_sat=1000)
    factory = RequestFactory(tiny_mix(), rng.stream("demand"))
    generator = OpenLoopGenerator(
        sim, app, trace, factory, rng.stream("arrivals"), think_time=1.0
    )
    stepper = FluidStepper(
        sim, app, tiny_mix(), rng.stream("fluid"),
        think_time=1.0, trace=trace,
    )
    governor = ModeGovernor(
        sim, app, generator, stepper, factory, bus,
        trace=trace, faults=faults, config=config,
    )
    return app, generator, stepper, governor


def test_config_validation():
    with pytest.raises(ConfigurationError):
        GovernorConfig(tick=0.0)
    with pytest.raises(ConfigurationError):
        GovernorConfig(settle=-1.0)
    with pytest.raises(ConfigurationError):
        GovernorConfig(deriv_threshold=0.0)


def test_flat_trace_enters_fluid_and_conserves(sim, rng):
    trace = Trace("flat", [0.0, 60.0], [100.0, 100.0])
    app, generator, stepper, governor = make_rig(sim, rng, trace)
    generator.start()
    governor.start()
    sim.run(until=60.0)
    governor.finish()
    generator.stop()
    sim.run(until=90.0)  # drain
    assert governor.fluid_entries >= 1
    assert governor.mode == MODE_DISCRETE
    # The stepper's ledger closed exactly: everything it generated
    # either completed in fluid or was handed back as discrete requests.
    assert stepper.generated == stepper.completed + stepper.materialised
    assert governor.materialised_total == stepper.materialised
    assert app.in_flight == 0


def test_bursty_trace_stays_discrete(sim, rng):
    # A sawtooth swinging 100 <-> 500 every 10 s: the 15 s inspection
    # window always sees most of the swing, far above the 10% threshold.
    knots = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0]
    users = [100.0, 500.0, 100.0, 500.0, 100.0, 500.0, 100.0]
    trace = Trace("saw", knots, users)
    app, generator, stepper, governor = make_rig(sim, rng, trace)
    generator.start()
    governor.start()
    sim.run(until=60.0)
    governor.finish()
    assert governor.fluid_entries == 0
    assert governor.mode == MODE_DISCRETE
    assert stepper.generated == 0


def test_fault_window_guard(sim, rng):
    trace = Trace("flat", [0.0, 120.0], [100.0, 100.0])
    plan = FaultPlan((ServerCrashSpec(tier="app", at=60.0),))
    _, _, _, governor = make_rig(sim, rng, trace, faults=plan)
    start, end = plan.specs[0].window
    # Inside the +-10 s guard band the trigger names the fault window.
    assert governor.discrete_trigger(start - 5.0) == "fault window guard"
    assert governor.discrete_trigger(end + 5.0) == "fault window guard"
    # Well clear of it (and of the initial settle), no trigger.
    assert governor.discrete_trigger(end + 30.0) is None


def test_material_decision_holds_discrete_for_settle_window(sim, rng):
    trace = Trace("flat", [0.0, 120.0], [100.0, 100.0])
    bus = ControlBus()
    _, _, _, governor = make_rig(sim, rng, trace, bus=bus)
    governor.start()
    assert governor.discrete_trigger(50.0) is None
    bus.publish(
        DecisionEvent(time=50.0, kind=THRESHOLD_TRIP, tier="app", value=1)
    )
    assert governor.discrete_trigger(54.0) == "controller activity settle"
    assert governor.discrete_trigger(59.0) is None


def test_noop_and_mode_events_do_not_reset_settle(sim, rng):
    trace = Trace("flat", [0.0, 120.0], [100.0, 100.0])
    bus = ControlBus()
    _, _, _, governor = make_rig(sim, rng, trace, bus=bus)
    governor.start()
    bus.publish(DecisionEvent(time=50.0, kind=NOOP, tier="app"))
    bus.publish(
        DecisionEvent(time=50.0, kind=MODE_KINDS[0], tier="all", value=3)
    )
    assert governor.discrete_trigger(51.0) is None


def test_min_dwell_gates_entry_into_fluid(sim, rng):
    trace = Trace("flat", [0.0, 120.0], [100.0, 100.0])
    _, generator, _, governor = make_rig(
        sim, rng, trace, config=GovernorConfig(min_dwell=5.0)
    )
    generator.start()
    governor._last_switch = 2.0
    governor._tick(4.0)  # inside the dwell window: stays discrete
    assert governor.mode == MODE_DISCRETE
    governor._tick(8.0)  # dwell expired, trace quiet: switch
    assert governor.mode == MODE_FLUID


def test_switches_publish_mode_decision_events(sim, rng):
    trace = Trace("flat", [0.0, 60.0], [100.0, 100.0])
    bus = ControlBus()
    seen: list[DecisionEvent] = []
    bus.subscribe(DecisionEvent, seen.append)
    _, generator, _, governor = make_rig(sim, rng, trace, bus=bus)
    generator.start()
    governor.start()
    sim.run(until=60.0)
    governor.finish()
    generator.stop()
    kinds = [e.kind for e in seen if e.kind in MODE_KINDS]
    assert MODE_KINDS[0] in kinds and MODE_KINDS[1] in kinds
    # Alternating, starting with a fluid entry, all from the governor.
    mode_events = [e for e in seen if e.kind in MODE_KINDS]
    assert all(e.source == "governor" for e in mode_events)
    for i, event in enumerate(mode_events):
        assert event.kind == MODE_KINDS[i % 2]
    # The final event closes the run back into discrete mode.
    assert mode_events[-1].kind == MODE_KINDS[1]
    handed_back = sum(
        int(e.value or 0) for e in mode_events if e.kind == MODE_KINDS[1]
    )
    assert handed_back == governor.materialised_total


def test_double_start_rejected(sim, rng):
    trace = Trace("flat", [0.0, 10.0], [10.0, 10.0])
    _, _, _, governor = make_rig(sim, rng, trace)
    governor.start()
    with pytest.raises(ConfigurationError):
        governor.start()
