"""Tests for the aggregate fluid integrator (repro.sim.fluid)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.fluid import FLUID_ARRIVALS, FluidStepper, open_occupancy
from repro.workload.generator import RequestFactory
from repro.workload.trace import Trace

from tests.conftest import build_app, tiny_mix


def mmk_mean(lam: float, k: int, demand: float) -> float:
    """Closed-form M/M/k mean number in system (Erlang-C)."""
    a = lam * demand
    rho = a / k
    head = sum(a**j / math.factorial(j) for j in range(k))
    last = a**k / (math.factorial(k) * (1.0 - rho))
    erlang_c = last / (head + last)
    return a + erlang_c * rho / (1.0 - rho)


def mmk_rates(k: int, demand: float, cap: int) -> np.ndarray:
    """Birth–death completion-rate table of a k-unit resource."""
    return np.minimum(np.arange(1, cap + 1, dtype=float), k) / demand


# ----------------------------------------------------------------------
# the stationary solver
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "lam,k,demand",
    [(3.0, 5, 1.0), (10.0, 12, 1.0), (0.5, 1, 1.0), (40.0, 50, 0.8)],
)
def test_open_occupancy_matches_erlang_c(lam, k, demand):
    """For a penalty-free k-unit resource the birth–death mean is
    exactly the M/M/k closed form, to machine precision."""
    mean, stable = open_occupancy(lam, mmk_rates(k, demand, cap=k))
    assert stable
    assert mean == pytest.approx(mmk_mean(lam, k, demand), rel=1e-12)


def test_open_occupancy_flat_tail_beyond_cap_is_equivalent():
    """Padding the table with flat rates beyond k (the soft-cap region)
    must not change the answer — the closed-form geometric tail and the
    explicit flat entries describe the same queue."""
    short, _ = open_occupancy(7.0, mmk_rates(10, 0.005 * 200, cap=10))
    padded, _ = open_occupancy(7.0, mmk_rates(10, 0.005 * 200, cap=60))
    assert padded == pytest.approx(short, rel=1e-9)


def test_open_occupancy_edge_cases():
    assert open_occupancy(0.0, mmk_rates(2, 1.0, 2)) == (0.0, True)
    mean, stable = open_occupancy(1.0, np.zeros(0))
    assert math.isinf(mean) and not stable
    # Offered load at/above the stability margin of the saturated rate.
    mean, stable = open_occupancy(1.99, mmk_rates(2, 1.0, 2))
    assert math.isinf(mean) and not stable


# ----------------------------------------------------------------------
# stepper construction
# ----------------------------------------------------------------------

def make_stepper(sim, rng, app, *, arrivals="open", trace=None,
                 population=None, think_time=1.0, cv=0.0, **kw):
    return FluidStepper(
        sim, app, tiny_mix(cv=cv), rng.stream("fluid"),
        think_time=think_time, arrivals=arrivals, trace=trace,
        population=population, **kw,
    )


def test_stepper_validation(sim, rng):
    app = build_app(sim)
    trace = Trace("flat", [0.0, 10.0], [10.0, 10.0])
    with pytest.raises(ConfigurationError, match="arrival model"):
        make_stepper(sim, rng, app, arrivals="batch", trace=trace)
    with pytest.raises(ConfigurationError, match="needs a trace"):
        make_stepper(sim, rng, app, arrivals="open", trace=None)
    with pytest.raises(ConfigurationError, match="population"):
        make_stepper(sim, rng, app, arrivals="closed", population=0)
    with pytest.raises(ConfigurationError, match="think_time"):
        make_stepper(sim, rng, app, trace=trace, think_time=0.0)
    with pytest.raises(ConfigurationError, match="step"):
        make_stepper(sim, rng, app, trace=trace, step=0.0)
    assert FLUID_ARRIVALS == ("open", "closed")


def test_stepper_phase_lifecycle_guards(sim, rng):
    app = build_app(sim, db_a_sat=1000)
    trace = Trace("flat", [0.0, 10.0], [10.0, 10.0])
    stepper = make_stepper(sim, rng, app, trace=trace)
    with pytest.raises(SimulationError):
        stepper.halt()  # not running
    stepper.start()
    with pytest.raises(SimulationError):
        stepper.start()  # already running


# ----------------------------------------------------------------------
# steady state vs the analytic oracle
# ----------------------------------------------------------------------

def test_stepper_db_occupancy_matches_mmk_oracle(sim, rng):
    """Open arrivals into a penalty-free 10-unit DB resource: the fluid
    occupancy must relax to the independently computed M/M/10 mean."""
    app = build_app(sim, db_a_sat=10.0)  # web/app effectively infinite
    lam = 1400.0  # util = 1400 * 0.005 / 10 = 0.70
    trace = Trace("flat", [0.0, 60.0], [lam, lam])  # think_time = 1.0
    stepper = make_stepper(sim, rng, app, trace=trace)
    stepper.start()
    sim.run(until=30.0)
    expected = mmk_mean(lam, 10, 0.005)
    assert stepper.occupancy()["db"] == pytest.approx(expected, rel=0.02)


def test_stepper_open_throughput_tracks_offered_load(sim, rng):
    app = build_app(sim, db_a_sat=1000)
    trace = Trace("flat", [0.0, 20.0], [100.0, 100.0])
    stepper = make_stepper(sim, rng, app, trace=trace)
    stepper.start()
    sim.run(until=20.0)
    # 100 users / 1 s think = 100 req/s offered; the system is fast, so
    # nearly everything completes inside the window.
    assert stepper.generated == pytest.approx(2000, rel=0.02)
    assert stepper.completed == pytest.approx(2000, rel=0.03)


def test_stepper_closed_population_matches_cycle_time(sim, rng):
    """Closed MVA path, no queueing: throughput = P / (Z + sum demands)."""
    app = build_app(sim, db_a_sat=1000)
    stepper = make_stepper(sim, rng, app, arrivals="closed", population=4)
    stepper.start()
    sim.run(until=20.0)
    # tiny_mix demands sum to 7.5 ms; think time 1 s.
    assert stepper.completed == pytest.approx(4 / 1.0075 * 20.0, rel=0.05)


# ----------------------------------------------------------------------
# integer ledger / conservation
# ----------------------------------------------------------------------

def test_integer_ledger_conserves_requests(sim, rng):
    app = build_app(sim, db_a_sat=1000)
    trace = Trace("flat", [0.0, 10.0], [200.0, 200.0])
    stepper = make_stepper(sim, rng, app, trace=trace)
    stepper.start()
    sim.run(until=10.0)
    assert stepper.generated > 0
    assert stepper.outstanding >= 0
    assert (
        stepper.outstanding
        == stepper.generated - stepper.completed - stepper.materialised
    )
    handover = stepper.halt()
    assert handover >= 0
    assert stepper.outstanding == 0
    assert stepper.generated == stepper.completed + stepper.materialised
    # Synthetic completions flowed through the application counters.
    assert app.completed == stepper.completed


def test_ledger_spans_multiple_phases(sim, rng):
    app = build_app(sim, db_a_sat=1000)
    trace = Trace("flat", [0.0, 20.0], [100.0, 100.0])
    stepper = make_stepper(sim, rng, app, trace=trace)
    stepper.start()
    sim.run(until=5.0)
    first = stepper.halt()
    sim.run(until=10.0)
    stepper.start()
    sim.run(until=15.0)
    second = stepper.halt()
    assert stepper.materialised == first + second
    assert stepper.generated == stepper.completed + stepper.materialised
    assert stepper.generated == pytest.approx(1000, rel=0.05)


# ----------------------------------------------------------------------
# telemetry + re-materialisation
# ----------------------------------------------------------------------

def test_fluid_phase_deposits_server_telemetry(sim, rng):
    app = build_app(sim, db_a_sat=10.0)
    trace = Trace("flat", [0.0, 10.0], [1000.0, 1000.0])
    stepper = make_stepper(sim, rng, app, trace=trace)
    stepper.start()
    sim.run(until=10.0)
    web = app.tiers["web"].servers[0]
    db = app.tiers["db"].servers[0]
    # Round-robin integer completions over one web server: exact match.
    assert web.completions == stepper.completed > 0
    assert web.latency_total > 0.0
    assert db.util_integral["cpu"] > 0.0
    assert db.concurrency_integral > 0.0


def test_materialise_requests_scales_demands_to_half_work(sim, rng):
    app = build_app(sim, db_a_sat=1000)
    trace = Trace("flat", [0.0, 10.0], [100.0, 100.0])
    stepper = make_stepper(sim, rng, app, trace=trace)
    factory = RequestFactory(tiny_mix(cv=0.0), rng.stream("demand"))
    requests = stepper.materialise_requests(factory, 400)
    assert len(requests) == 400
    # cv=0 demands are deterministic, so the scaling factor is exactly
    # the drawn remaining-work fraction: in (0, 1), mean ~ 1/2.
    fractions = [r.demands["db"] / 0.005 for r in requests]
    assert all(0.0 <= f <= 1.0 for f in fractions)
    assert np.mean(fractions) == pytest.approx(0.5, abs=0.08)
    # All three tiers share one fraction per request.
    req = requests[0]
    assert req.demands["web"] / 0.0005 == pytest.approx(
        req.demands["db"] / 0.005, rel=1e-9
    )
