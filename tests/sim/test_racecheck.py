"""The tie-order race detector: engine semantics and runner-level checks.

Engine level: events sharing (time, priority) are *concurrent* — the
``reverse`` tie order executes each such batch backwards, so any
observable that depends on intra-batch order diverges between the two
orders, while priority-separated events stay put. Runner level:
:func:`repro.experiments.racecheck.run_race_check` runs a spec under
both orders and raises :class:`TieOrderRaceError` on divergence; at
HEAD the check must be clean, and a deliberately broken tie-break (the
VM sampler demoted into the controller's concurrency batch) must be
caught.
"""

import pytest

import repro.experiments.runner as runner_mod
from repro.errors import ConfigurationError, TieOrderRaceError
from repro.experiments.artifact import RunSpec
from repro.experiments.racecheck import RaceCheckReport, run_race_check
from repro.experiments.runner import execute_spec
from repro.experiments.scenarios import ScenarioConfig
from repro.sim.engine import (
    PRIORITY_CONTROLLER,
    PRIORITY_SAMPLER,
    TIE_ORDERS,
    Simulator,
)


def _spec(duration: float = 40.0) -> RunSpec:
    return RunSpec(
        framework="conscale",
        config=ScenarioConfig(
            name="racecheck-test", trace_name="dual_phase",
            load_scale=300.0, duration=duration, seed=2,
        ),
    )


# ----------------------------------------------------------------------
# engine-level semantics
# ----------------------------------------------------------------------

def _order_sensitive_run(tie_order: str, priorities: tuple[int, int]) -> list:
    """Two same-time events appending to a shared log."""
    sim = Simulator(tie_order=tie_order)
    log: list[str] = []
    sim.schedule(1.0, log.append, "first-scheduled", priority=priorities[0])
    sim.schedule(1.0, log.append, "second-scheduled", priority=priorities[1])
    sim.run()
    return log


def test_tie_orders_exposed_and_validated():
    assert TIE_ORDERS == ("fifo", "reverse")
    with pytest.raises(ConfigurationError, match="tie_order"):
        Simulator(tie_order="shuffled")


def test_same_priority_ties_reverse_under_permuted_order():
    fifo = _order_sensitive_run("fifo", (0, 0))
    rev = _order_sensitive_run("reverse", (0, 0))
    assert fifo == ["first-scheduled", "second-scheduled"]
    assert rev == ["second-scheduled", "first-scheduled"]


def test_priority_separated_events_are_immune_to_tie_order():
    for order in TIE_ORDERS:
        assert _order_sensitive_run(order, (0, PRIORITY_CONTROLLER)) == [
            "first-scheduled", "second-scheduled",
        ]
        assert _order_sensitive_run(order, (PRIORITY_CONTROLLER, 0)) == [
            "second-scheduled", "first-scheduled",
        ]


def test_reverse_order_preserves_causality_within_a_timestamp():
    """An event scheduled *during* a concurrent batch still runs after
    its creator — permutation applies to pending events only."""
    sim = Simulator(tie_order="reverse")
    log: list[str] = []

    def parent(tag: str) -> None:
        log.append(tag)
        sim.schedule(1.0, log.append, f"child-of-{tag}")

    sim.schedule(1.0, parent, "a")
    sim.schedule(1.0, parent, "b")
    sim.run()
    assert log[0] in ("a", "b")
    assert log.index("child-of-a") > log.index("a")
    assert log.index("child-of-b") > log.index("b")


def test_tie_counters_count_concurrent_batches():
    sim = Simulator(tie_order="reverse")
    for _ in range(3):
        sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)  # alone at its instant: no batch
    sim.run()
    assert sim.tie_batches == 1
    assert sim.tie_events == 3


def test_fifo_simulator_reports_zero_tie_batches():
    sim = Simulator()
    for _ in range(3):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.tie_order == "fifo"
    assert sim.tie_batches == 0


# ----------------------------------------------------------------------
# runner-level: the race check proper
# ----------------------------------------------------------------------

def test_execute_spec_rejects_a_used_simulator():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    with pytest.raises(ConfigurationError, match="fresh simulator"):
        execute_spec(_spec(), sim=sim)


def test_race_check_clean_at_head():
    report = run_race_check(_spec())
    assert isinstance(report, RaceCheckReport)
    # The check is vacuous unless the run actually exercised
    # same-(time, priority) batches.
    assert report.tie_batches > 0
    assert report.tie_events >= 2 * report.tie_batches
    assert report.spec_digest == _spec().digest()
    assert "no observable divergence" in report.describe()


def test_broken_tie_break_is_caught(monkeypatch):
    """Demote the VM sampler into the controller's priority: a launch
    decided at a sample instant is then counted (or not) depending on
    which concurrent event pops first — the observer race the priority
    layering exists to prevent."""
    monkeypatch.setattr(runner_mod, "PRIORITY_SAMPLER", PRIORITY_CONTROLLER)
    with pytest.raises(TieOrderRaceError) as excinfo:
        run_race_check(_spec())
    message = str(excinfo.value)
    assert "vm timeline" in message
    assert "concurrent batch" in message


def test_head_priorities_are_actually_layered():
    """Guard the seam the broken-tie-break test monkeypatches: the real
    sampler priority must differ from every model/controller priority."""
    assert PRIORITY_SAMPLER not in (0, PRIORITY_CONTROLLER)
    assert runner_mod.PRIORITY_SAMPLER == PRIORITY_SAMPLER


def test_race_check_clean_on_heap_calendar():
    """The tie-order contract must hold under both event calendars."""
    report = run_race_check(_spec(), calendar="heap")
    assert isinstance(report, RaceCheckReport)
    assert report.tie_batches > 0
