"""Tests for the discrete-event engine."""

import pytest

from repro.errors import ScheduleError, SimulationError
from repro.sim.engine import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_custom_start():
    assert Simulator(start_time=5.0).now == 5.0


def test_events_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(3.0, seen.append, "c")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_ties_break_by_schedule_order():
    sim = Simulator()
    seen = []
    for tag in ("first", "second", "third"):
        sim.schedule(1.0, seen.append, tag)
    sim.run()
    assert seen == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    times = []
    sim.schedule(2.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [2.5]
    assert sim.now == 2.5


def test_run_until_excludes_later_events():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "early")
    sim.schedule(10.0, seen.append, "late")
    sim.run(until=5.0)
    assert seen == ["early"]
    assert sim.now == 5.0  # clock lands exactly on `until`


def test_run_until_then_resume():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, 1)
    sim.schedule(10.0, seen.append, 10)
    sim.run(until=5.0)
    sim.run()
    assert seen == [1, 10]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(ScheduleError):
        sim.schedule(1.0, lambda: None)


def test_schedule_after_negative_delay_raises():
    with pytest.raises(ScheduleError):
        Simulator().schedule_after(-1.0, lambda: None)


def test_schedule_after_relative():
    sim = Simulator()
    seen = []
    sim.schedule(3.0, lambda: sim.schedule_after(2.0, lambda: seen.append(sim.now)))
    sim.run()
    # the inner callback records the time it RUNS at, i.e. 5.0
    assert seen == [5.0]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    seen = []
    handle = sim.schedule(1.0, seen.append, "x")
    handle.cancel()
    sim.run()
    assert seen == []
    assert sim.events_executed == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_stop_from_callback():
    sim = Simulator()
    seen = []

    def first():
        seen.append(1)
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, seen.append, 2)
    sim.run()
    assert seen == [1]


def test_max_events_budget():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(float(i + 1), seen.append, i)
    sim.run(max_events=2)
    assert seen == [0, 1]


def test_events_executed_counts_only_fired():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    sim.run()
    assert sim.events_executed == 1


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    assert sim.pending_events == 1


def test_pending_events_double_cancel_counts_once():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    h.cancel()
    assert sim.pending_events == 1


def test_pending_events_cancel_after_fire_is_noop():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=1.5)
    assert sim.pending_events == 1
    h.cancel()  # already fired; must not decrement
    assert sim.pending_events == 1


def test_pending_events_drains_to_zero():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
    handles[2].cancel()
    assert sim.pending_events == 3
    sim.run()
    assert sim.pending_events == 0


def test_reentrant_run_raises():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(SimulationError):
        sim.run()


def test_callback_scheduling_more_events():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 4:
            sim.schedule_after(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3, 4]
    assert sim.now == 4.0
