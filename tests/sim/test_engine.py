"""Tests for the discrete-event engine."""

import pytest

from repro.errors import ScheduleError, SimulationError
from repro.sim.engine import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_clock_custom_start():
    assert Simulator(start_time=5.0).now == 5.0


def test_events_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(3.0, seen.append, "c")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_ties_break_by_schedule_order():
    sim = Simulator()
    seen = []
    for tag in ("first", "second", "third"):
        sim.schedule(1.0, seen.append, tag)
    sim.run()
    assert seen == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    times = []
    sim.schedule(2.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [2.5]
    assert sim.now == 2.5


def test_run_until_excludes_later_events():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "early")
    sim.schedule(10.0, seen.append, "late")
    sim.run(until=5.0)
    assert seen == ["early"]
    assert sim.now == 5.0  # clock lands exactly on `until`


def test_run_until_then_resume():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, 1)
    sim.schedule(10.0, seen.append, 10)
    sim.run(until=5.0)
    sim.run()
    assert seen == [1, 10]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(ScheduleError):
        sim.schedule(1.0, lambda: None)


def test_schedule_after_negative_delay_raises():
    with pytest.raises(ScheduleError):
        Simulator().schedule_after(-1.0, lambda: None)


def test_schedule_after_relative():
    sim = Simulator()
    seen = []
    sim.schedule(3.0, lambda: sim.schedule_after(2.0, lambda: seen.append(sim.now)))
    sim.run()
    # the inner callback records the time it RUNS at, i.e. 5.0
    assert seen == [5.0]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    seen = []
    handle = sim.schedule(1.0, seen.append, "x")
    handle.cancel()
    sim.run()
    assert seen == []
    assert sim.events_executed == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_stop_from_callback():
    sim = Simulator()
    seen = []

    def first():
        seen.append(1)
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, seen.append, 2)
    sim.run()
    assert seen == [1]


def test_max_events_budget():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(float(i + 1), seen.append, i)
    sim.run(max_events=2)
    assert seen == [0, 1]


def test_events_executed_counts_only_fired():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    sim.run()
    assert sim.events_executed == 1


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    assert sim.pending_events == 1


def test_pending_events_double_cancel_counts_once():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    h.cancel()
    assert sim.pending_events == 1


def test_pending_events_cancel_after_fire_is_noop():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=1.5)
    assert sim.pending_events == 1
    h.cancel()  # already fired; must not decrement
    assert sim.pending_events == 1


def test_pending_events_drains_to_zero():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
    handles[2].cancel()
    assert sim.pending_events == 3
    sim.run()
    assert sim.pending_events == 0


def test_reentrant_run_raises():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(SimulationError):
        sim.run()


def test_callback_scheduling_more_events():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 4:
            sim.schedule_after(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3, 4]
    assert sim.now == 4.0


# ----------------------------------------------------------------------
# reschedule / rearm (the churn-free fast paths)
# ----------------------------------------------------------------------

def test_reschedule_moves_event_to_new_time():
    for calendar in ("wheel", "heap"):
        sim = Simulator(calendar=calendar)
        seen = []
        h = sim.schedule(1.0, seen.append, "x")
        sim.reschedule(h, 3.0)
        sim.schedule(2.0, seen.append, "y")
        sim.run()
        assert seen == ["y", "x"], calendar
        assert sim.now == 3.0


def test_reschedule_already_fired_raises():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ScheduleError, match="already-fired"):
        sim.reschedule(h, 2.0)


def test_reschedule_cancelled_raises():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    h.cancel()
    with pytest.raises(ScheduleError, match="cancelled"):
        sim.reschedule(h, 2.0)


def test_reschedule_foreign_handle_raises():
    sim, other = Simulator(), Simulator()
    h = other.schedule(1.0, lambda: None)
    with pytest.raises(ScheduleError, match="foreign"):
        sim.reschedule(h, 2.0)


def test_reschedule_into_past_raises():
    sim = Simulator()
    h = sim.schedule(5.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=3.0)
    with pytest.raises(ScheduleError, match="clock is at"):
        sim.reschedule(h, 1.0)


def test_reschedule_sequences_as_fresh_schedule():
    """A rescheduled event runs after events already pending at the same
    instant, exactly like a cancel+schedule pair would."""
    for calendar in ("wheel", "heap"):
        sim = Simulator(calendar=calendar)
        seen = []
        moved = sim.schedule(1.0, seen.append, "moved")
        sim.schedule(2.0, seen.append, "resident")
        sim.reschedule(moved, 2.0)
        sim.run()
        assert seen == ["resident", "moved"], calendar


def test_rearm_refires_same_handle():
    sim = Simulator()
    seen = []

    def tick():
        seen.append(sim.now)
        if len(seen) < 3:
            sim.rearm(h, sim.now + 1.0)

    h = sim.schedule(1.0, tick)
    sim.run()
    assert seen == [1.0, 2.0, 3.0]
    assert h.done


def test_rearm_pending_handle_raises():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    with pytest.raises(ScheduleError, match="still-pending"):
        sim.rearm(h, 2.0)


def test_rearm_cancelled_handle_raises():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    h.cancel()
    sim.run()
    with pytest.raises(ScheduleError, match="cancelled"):
        sim.rearm(h, 2.0)


def test_rearmed_handle_can_be_cancelled():
    sim = Simulator()
    seen = []

    def tick():
        seen.append(sim.now)
        sim.rearm(h, sim.now + 1.0)
        if sim.now >= 2.0:
            h.cancel()

    h = sim.schedule(1.0, tick)
    sim.run(until=10.0)
    assert seen == [1.0, 2.0]


# ----------------------------------------------------------------------
# budget exhaustion inside a permuted concurrent batch
# ----------------------------------------------------------------------

def test_max_events_mid_batch_reverse_tie_order():
    """Exhausting max_events halfway through a reversed batch must keep
    the unexecuted tail schedulable, and a later run() finishes it."""
    for calendar in ("wheel", "heap"):
        sim = Simulator(tie_order="reverse", calendar=calendar)
        seen = []
        for tag in ("a", "b", "c", "d", "e"):
            sim.schedule(1.0, seen.append, tag)
        sim.run(max_events=3)
        assert seen == ["e", "d", "c"], calendar
        assert sim.pending_events == 2
        sim.run()
        assert seen == ["e", "d", "c", "b", "a"], calendar
        assert sim.pending_events == 0


def test_max_events_mid_batch_preserves_cancelled_tail():
    sim = Simulator(tie_order="reverse")
    seen = []
    handles = [sim.schedule(1.0, seen.append, tag) for tag in "abcde"]
    handles[0].cancel()  # tail member under reversal
    sim.run(max_events=3)
    assert seen == ["e", "d", "c"]
    sim.run()
    assert seen == ["e", "d", "c", "b"]
    assert handles[0].done and handles[0].cancelled


# ----------------------------------------------------------------------
# calendar selection and introspection
# ----------------------------------------------------------------------

def test_calendar_property_and_default():
    assert Simulator().calendar == "wheel"
    assert Simulator(calendar="heap").calendar == "heap"


def test_unknown_calendar_raises():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="calendar"):
        Simulator(calendar="splay")


def test_repr_reports_live_pending_and_calendar():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(3)]
    handles[0].cancel()
    text = repr(sim)
    assert "pending=2" in text       # live count, not raw storage
    assert "calendar='wheel'" in text
