"""Unit tests for the control-plane event bus."""

import pytest

from repro.control.bus import ControlBus
from repro.control.events import DecisionEvent, TelemetryEvent


def decision(t=1.0, kind="noop", tier="app", **kw):
    return DecisionEvent(time=t, kind=kind, tier=tier, **kw)


def test_publish_reaches_subscribers_in_order():
    bus = ControlBus()
    seen = []
    bus.subscribe(DecisionEvent, lambda e: seen.append(("first", e)))
    bus.subscribe(DecisionEvent, lambda e: seen.append(("second", e)))
    event = decision()
    bus.publish(event)
    assert seen == [("first", event), ("second", event)]


def test_dispatch_is_keyed_by_exact_type():
    bus = ControlBus()
    decisions, telemetry = [], []
    bus.subscribe(DecisionEvent, decisions.append)
    bus.subscribe(TelemetryEvent, telemetry.append)
    bus.publish(decision())
    bus.publish(TelemetryEvent(1.0, "db-1", "db", 0.5, 3.0, 100.0))
    assert len(decisions) == 1 and len(telemetry) == 1


def test_publish_without_subscribers_is_a_noop():
    ControlBus().publish(decision())  # must not raise


def test_has_subscribers():
    bus = ControlBus()
    assert not bus.has_subscribers(TelemetryEvent)
    handler = lambda e: None  # noqa: E731
    bus.subscribe(TelemetryEvent, handler)
    assert bus.has_subscribers(TelemetryEvent)
    assert not bus.has_subscribers(DecisionEvent)
    bus.unsubscribe(TelemetryEvent, handler)
    assert not bus.has_subscribers(TelemetryEvent)


def test_unsubscribe_unknown_handler_is_a_noop():
    bus = ControlBus()
    bus.unsubscribe(DecisionEvent, lambda e: None)  # must not raise


def test_handler_exceptions_propagate_to_publisher():
    bus = ControlBus()

    def broken(_event):
        raise RuntimeError("recorder broke")

    bus.subscribe(DecisionEvent, broken)
    with pytest.raises(RuntimeError):
        bus.publish(decision())
