"""Unit tests for the decision trace: queries, columnar round-trips,
signatures, and the legacy ActionLog upgrade path."""

import pickle

import numpy as np

from repro.control.bus import ControlBus
from repro.control.events import NOOP, THRESHOLD_TRIP, DecisionEvent
from repro.control.trace import DecisionTrace
from repro.scaling.actions import ActionLog, ScalingAction


def sample_events():
    return [
        DecisionEvent(1.0, THRESHOLD_TRIP, "app", detail="out",
                      source="ec2-autoscaling", reason="cpu 0.92 > 0.80"),
        DecisionEvent(1.0, "scale_out_started", "app", detail="vm-2",
                      source="actuator"),
        DecisionEvent(2.0, NOOP, "db", source="ec2-autoscaling",
                      reason="cpu 0.35 within thresholds"),
        DecisionEvent(16.0, "scale_out_ready", "app", detail="app-2",
                      source="actuator"),
        DecisionEvent(17.0, "soft_db_connections", "app", value=9,
                      source="actuator", reason="SCT Q_lower=18 / 2 app",
                      estimate=18.0),
    ]


def test_trace_records_from_bus():
    bus = ControlBus()
    trace = DecisionTrace().attach(bus)
    for event in sample_events():
        bus.publish(event)
    assert len(trace) == 5
    assert trace.all() == sample_events()


def test_query_surface():
    trace = DecisionTrace(sample_events())
    assert [e.kind for e in trace.material()] == [
        THRESHOLD_TRIP, "scale_out_started", "scale_out_ready",
        "soft_db_connections",
    ]
    assert len(trace.noops()) == 1
    assert trace.noops()[0].reason == "cpu 0.35 within thresholds"
    assert trace.scale_out_times("app") == [16.0]
    assert trace.cap_decisions("app", "soft_db_connections") == [(17.0, 9)]
    assert [e.tier for e in trace.for_tier("db")] == ["db"]
    assert len(trace.of_kind(THRESHOLD_TRIP, NOOP)) == 2


def test_keys_exclude_free_text():
    """Two traces whose decisions match but whose reasons differ must
    compare equal through keys() — reasons embed formatted floats."""
    a = DecisionTrace([DecisionEvent(1.0, "soft_app_threads", "app", 20,
                                     reason="cpu 0.81")])
    b = DecisionTrace([DecisionEvent(1.0, "soft_app_threads", "app", 20,
                                     reason="cpu 0.82")])
    assert a.keys() == b.keys()
    assert a.keys(include_noops=False) == [(1.0, "soft_app_threads", "app", 20)]


def test_columns_roundtrip_preserves_everything():
    trace = DecisionTrace(sample_events())
    clone = DecisionTrace.from_columns(trace.to_columns())
    assert clone.all() == trace.all()


def test_pickle_roundtrip_is_columnar():
    trace = DecisionTrace(sample_events())
    state = trace.__getstate__()
    assert set(state) == {"columns"}
    assert isinstance(state["columns"]["time"], np.ndarray)
    clone = pickle.loads(pickle.dumps(trace))
    assert clone.all() == trace.all()


def test_empty_trace_roundtrips():
    trace = DecisionTrace()
    clone = pickle.loads(pickle.dumps(trace))
    assert len(clone) == 0
    assert clone.keys() == []
    assert clone.material() == []
    restored = DecisionTrace.from_columns(trace.to_columns())
    assert restored.all() == []


def test_signature_key_ignores_reason_but_not_decisions():
    base = [DecisionEvent(1.0, "soft_app_threads", "app", 20, reason="x")]
    reworded = [DecisionEvent(1.0, "soft_app_threads", "app", 20, reason="y")]
    changed = [DecisionEvent(1.0, "soft_app_threads", "app", 21, reason="x")]

    def sig(events):
        from repro.experiments.artifact import content_digest

        return content_digest(DecisionTrace(events).signature_key())

    assert sig(base) == sig(reworded)
    assert sig(base) != sig(changed)


def test_legacy_actionlog_pickle_upgrades():
    """A pickle carrying the pre-bus ActionLog state (a ``_actions``
    list of ScalingAction records) loads as a modern trace."""
    log = ActionLog.__new__(ActionLog)
    legacy_state = {
        "_actions": [
            ScalingAction(3.0, "scale_out_started", "db", None, "vm-4"),
            ScalingAction(18.0, "scale_out_ready", "db", None, "db-2"),
            ScalingAction(19.0, "soft_db_connections", "app", 12, ""),
        ]
    }
    log.__setstate__(legacy_state)
    assert isinstance(log, DecisionTrace)
    assert len(log) == 3
    assert log.scale_out_times("db") == [18.0]
    assert log.cap_decisions("app", "soft_db_connections") == [(19.0, 12)]
    # upgraded events have empty bus-era fields
    assert all(e.source == "" and e.reason == "" for e in log)


def test_actionlog_is_a_decision_trace():
    log = ActionLog()
    log.record(1.0, "scale_out_started", "app", detail="vm-2")
    assert isinstance(log, DecisionTrace)
    assert len(log) == 1


def test_render_shows_value_and_reason():
    text = DecisionTrace.render(sample_events())
    assert "soft_db_connections" in text
    assert "-> 9" in text
    assert "cpu 0.92 > 0.80" in text
