"""Tests for the error hierarchy and time-unit helpers."""

import pytest

from repro import errors
from repro.units import MINUTE, SECOND, minutes, ms, seconds


@pytest.mark.parametrize(
    "cls",
    [
        errors.ConfigurationError,
        errors.SimulationError,
        errors.ScheduleError,
        errors.CapacityModelError,
        errors.PoolError,
        errors.TraceError,
        errors.MonitoringError,
        errors.EstimationError,
        errors.ScalingError,
        errors.CloudError,
        errors.ExperimentError,
    ],
)
def test_all_errors_derive_from_repro_error(cls):
    assert issubclass(cls, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise cls("boom")


def test_schedule_error_is_simulation_error():
    assert issubclass(errors.ScheduleError, errors.SimulationError)


def test_ms_converts_to_seconds():
    assert ms(50) == 0.05
    assert ms(1000) == 1.0


def test_seconds_is_identity():
    assert seconds(2.5) == 2.5 * SECOND == 2.5


def test_minutes():
    assert minutes(12) == 12 * MINUTE == 720.0
